"""Benchmark: tracing must be pay-for-what-you-use.

The observability acceptance bar: with the default null sink the
analyzer pays one ``sink.enabled`` predicate per decision point and
nothing else — under 10% wall-clock overhead on the PERFECT workload
versus an analyzer built before any sink existed (approximated here by
the same analyzer, since the untraced path *is* the product path; the
comparison that matters is null sink vs an enabled collecting sink,
which bounds what the predicate checks can cost).

Emits ``BENCH_obs.json`` at the repository root with the measured
ratios for the perf trajectory.
"""

import json
import pathlib
import time

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.obs.hostmeta import host_metadata
from repro.obs.sinks import CollectingSink
from repro.perfect import load_suite

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs.json"
)


def _queries(scale=0.25):
    suite = load_suite(include_symbolic=False, scale=scale)
    out = []
    for program in suite:
        out.extend(program.queries)
    return out


def _run(queries, sink, repeats=3):
    """Best-of-N wall time for the full query stream."""
    best = float("inf")
    for _ in range(repeats):
        analyzer = DependenceAnalyzer(
            memoizer=Memoizer(), want_witness=False, sink=sink
        )
        start = time.perf_counter()
        for query in queries:
            analyzer.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_null_sink_overhead(benchmark, capsys):
    """Null-sink analysis must stay within 10% of the untraced path."""
    queries = _queries()

    def measure():
        t_default = _run(queries, sink=None)
        t_null = _run(queries, sink=None)  # second sample of the same path
        t_collect = _run(queries, sink=CollectingSink())
        return t_default, t_null, t_collect

    t_default, t_null, t_collect = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    baseline = min(t_default, t_null)
    jitter = abs(t_null - t_default) / baseline
    collect_ratio = t_collect / baseline
    with capsys.disabled():
        print()
        print(
            f"untraced {1e3 * baseline:.1f} ms "
            f"(run-to-run jitter {100 * jitter:.1f}%), "
            f"collecting sink {1e3 * t_collect:.1f} ms "
            f"({collect_ratio:.2f}x)"
        )
    payload = {
        **host_metadata(),
        "queries": len(queries),
        "untraced_seconds": baseline,
        "run_to_run_jitter": jitter,
        "collecting_seconds": t_collect,
        "collecting_ratio": collect_ratio,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    # The null path IS the default path, so its overhead bound is the
    # measurement jitter; 10% is the acceptance margin from the issue.
    assert jitter < 0.10 or abs(t_null - t_default) < 0.05
    # Even full event collection should stay within a small-integer
    # multiple; a blow-up here means events leaked into the hot path.
    assert collect_ratio < 3.0


def test_bench_enabled_check_is_cheap(benchmark):
    """Micro: a traced-off cascade run matches an explicit null sink."""
    from repro.deptests.svpc import SvpcTest
    from repro.harness.timing import representative_system
    from repro.obs.sinks import NULL_SINK

    systems = [representative_system("svpc", idx) for idx in range(6)]
    test = SvpcTest()

    def run():
        for system in systems:
            test.run(system)
            test.run(system, NULL_SINK)

    benchmark(run)
