"""Benchmark: cluster throughput scaling across worker processes.

Workload: the synthetic PERFECT corpus serialized to wire queries,
split across 8 concurrent clients that each pipeline their slice
(``call_many``) — the throughput-bound shape a build farm produces.
The same stream runs against two subprocess clusters:

* ``--cluster 1`` — one worker behind the router (the router-hop
  baseline);
* ``--cluster 4`` — four workers; the consistent-hash ring shards the
  key space so each worker serves its segment from its own process.

Each cluster gets a cold pass (fills the memo/fast lane) and a warm
pass (the measured one: the cluster's steady state).  Emits
``BENCH_cluster.json`` at the repository root with warm qps for both
fleet sizes and ``scaling_4_vs_1`` — their ratio, the near-linear-
scaling headline.  A single GIL-bound interpreter cannot parallelize
the warm path; four worker *processes* can, so on a >=4-core host the
ratio is gated (>= 2.5x).  On smaller hosts the workers time-share the
same cores and the ratio measures scheduler overhead, not scaling:
the JSON records ``"scaling_4_vs_1": null`` plus the observed ``cpus``
so the regression gate knows to skip it.
"""

import json
import os
import pathlib
import subprocess
import sys
import threading
import time

from repro.core.engine import queries_from_suite
from repro.ir.serde import query_to_dict
from repro.obs.hostmeta import host_metadata
from repro.perfect import load_suite
from repro.serve.client import Client

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO / "BENCH_cluster.json"
N_CLIENTS = 8
SCALE = 0.02
SCALING_FLOOR = 2.5
MIN_CPUS_FOR_GATE = 4


def _wire_calls():
    queries = queries_from_suite(
        load_suite(include_symbolic=True, scale=SCALE)
    )
    return [
        (
            "analyze",
            {
                "query": query_to_dict(q.ref1, q.nest1, q.ref2, q.nest2),
                "directions": True,
            },
        )
        for q in queries
    ]


def _start_cluster(n_workers: int) -> tuple[subprocess.Popen, str]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--cluster",
            str(n_workers),
            "--queue-limit",
            "50000",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        cwd=str(REPO),
        env={**os.environ, "PYTHONPATH": str(REPO / "src")},
    )
    announce = json.loads(proc.stdout.readline())["serving"]
    return proc, f"cluster://{announce['host']}:{announce['port']}"


def _stop_cluster(proc: subprocess.Popen) -> None:
    import signal

    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=60)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.wait(timeout=30)


def _run_pass(endpoint: str, calls) -> float:
    """One full pipelined stream across N_CLIENTS clients; elapsed s."""
    slices = [calls[i::N_CLIENTS] for i in range(N_CLIENTS)]
    errors: list[BaseException] = []

    def worker(index):
        try:
            with Client(endpoint, timeout=240.0, retry_for=10.0) as client:
                results = client.call_many(slices[index])
            assert all(isinstance(r, dict) for r in results)
        except BaseException as err:  # pragma: no cover
            errors.append(err)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def _measure(n_workers: int, calls) -> dict:
    proc, endpoint = _start_cluster(n_workers)
    try:
        cold_s = _run_pass(endpoint, calls)
        warm_s = _run_pass(endpoint, calls)
    finally:
        _stop_cluster(proc)
    n = len(calls)
    return {
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "cold_qps": round(n / cold_s, 1),
        "warm_qps": round(n / warm_s, 1),
    }


def test_bench_cluster_scaling(benchmark, capsys):
    """4 workers serve the warm stream >=2.5x faster than 1 (given cores)."""
    calls = _wire_calls()
    cpus = os.cpu_count() or 1

    def measure():
        return _measure(1, calls), _measure(4, calls)

    single, fleet = benchmark.pedantic(measure, rounds=1, iterations=1)

    gated = cpus >= MIN_CPUS_FOR_GATE
    scaling = round(fleet["warm_qps"] / single["warm_qps"], 3)
    payload = {
        **host_metadata(),
        "queries": len(calls),
        "clients": N_CLIENTS,
        "cpus": cpus,
        "single": single,
        "fleet": {"workers": 4, **fleet},
        # Host-dependent: null (gate skipped) below MIN_CPUS_FOR_GATE,
        # where 4 workers time-share the same cores.
        "scaling_4_vs_1": scaling if gated else None,
        "scaling_4_vs_1_observed": scaling,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"  1 worker: warm {single['warm_qps']} qps; "
            f"4 workers: warm {fleet['warm_qps']} qps "
            f"(x{scaling}, {cpus} cpu(s))"
        )
        if not gated:
            print(
                f"  scaling gate skipped: {cpus} < {MIN_CPUS_FOR_GATE} cores"
            )
        print(f"  wrote {BENCH_PATH.name}")

    if gated:
        assert scaling >= SCALING_FLOOR, (
            f"4-worker warm qps only {scaling}x the single-worker rate "
            f"on a {cpus}-core host (floor {SCALING_FLOOR}x)"
        )
