"""Compare fresh benchmark results against committed baselines.

CI regenerates the ``BENCH_*.json`` artifacts (batch, obs, serve,
hotpath, cluster, incremental, frontend) and this script diffs them
against ``benchmarks/baselines/``.  Only *ratio* metrics are gated
(speedups, memo hit rates, tracing overhead): raw wall-clock seconds
vary wildly across shared runners, but the ratios are computed within
one run and stay stable.  Exact workload invariants (query counts,
frontend corpus extraction counts) must match bit-for-bit.  A ratio
metric regresses when it moves more than ``TOLERANCE`` in its bad
direction — higher-better metrics may drop at most 25%, lower-better
metrics may rise at most 25%.  Improvements never fail the gate.
Every artifact carries the recording host (``cpus`` + ``host`` from
:mod:`repro.obs.hostmeta`); a baseline/fresh host mismatch is noted in
the log so cross-machine ratio drift can be read in context.

Usage::

    python benchmarks/check_regression.py \
        [--fresh-dir .] [--baseline-dir benchmarks/baselines] [--tolerance 0.25]

Exit status 0 when every gated metric is within tolerance, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TOLERANCE = 0.25

# (file, metric, direction): direction "higher" means bigger is better.
GATED_METRICS: tuple[tuple[str, str, str], ...] = (
    ("BENCH_batch.json", "speedup_cold_vs_serial", "higher"),
    ("BENCH_batch.json", "speedup_warm_vs_serial", "higher"),
    ("BENCH_batch.json", "cold_hit_rate_bounds", "higher"),
    ("BENCH_batch.json", "warm_hit_rate_bounds", "higher"),
    ("BENCH_batch.json", "cold_hit_rate_no_bounds", "higher"),
    ("BENCH_batch.json", "warm_hit_rate_no_bounds", "higher"),
    ("BENCH_obs.json", "collecting_ratio", "lower"),
    # The serving layer's whole point: a warm second run must keep
    # answering from cache (the test itself also hard-floors it >=0.9).
    ("BENCH_serve.json", "warm_hit_rate", "higher"),
    # The memo's whole point: a fully warm query stream must stay much
    # cheaper than the cold one (within-run ratio, noise-stable).
    ("BENCH_hotpath.json", "warm_speedup", "higher"),
    # Fleet scaling: 4 worker processes vs 1 behind the router.  The
    # benchmark records null on hosts with fewer than 4 cores (the
    # workers time-share, the ratio measures nothing) — a recorded
    # null on either side skips the gate rather than failing it.
    ("BENCH_cluster.json", "scaling_4_vs_1", "higher"),
    # The incremental engine's pitch: a single-statement edit on a
    # ~100-nest program beats a cold full re-analysis by >=5x (the
    # benchmark hard-floors that in-run) and re-queries under 10% of
    # the pairs.  Both are within-run ratios, noise-stable.
    ("BENCH_incremental.json", "warm_delta_speedup", "higher"),
    ("BENCH_incremental.json", "requery_fraction_max", "lower"),
    # Clean-path cost of the resilient client (retry loop + breaker
    # admission per call) as a within-run ratio vs a plain client on
    # the same warm stream.  The benchmark hard-fails above 1.05;
    # this gate catches slower drift against the baseline.
    ("BENCH_resilience.json", "resilient_overhead", "lower"),
)

# Exact workload invariants: the benchmark must still measure the same
# thing, so these must match the baseline bit-for-bit.
EXACT_METRICS: tuple[tuple[str, str], ...] = (
    ("BENCH_batch.json", "queries"),
    ("BENCH_batch.json", "unique_pairs"),
    ("BENCH_batch.json", "unique_problems"),
    ("BENCH_batch.json", "constant_screened"),
    ("BENCH_obs.json", "queries"),
    ("BENCH_serve.json", "queries"),
    ("BENCH_serve.json", "clients"),
    ("BENCH_hotpath.json", "queries"),
    ("BENCH_cluster.json", "queries"),
    ("BENCH_cluster.json", "clients"),
    ("BENCH_incremental.json", "statements"),
    ("BENCH_incremental.json", "pairs"),
    ("BENCH_incremental.json", "edits"),
    # The frontend corpus is pure determinism: extraction counts that
    # drift mean a frontend silently lost or invented loop nests.
    ("BENCH_frontend.json", "corpus_files"),
    ("BENCH_frontend.json", "nests"),
    ("BENCH_frontend.json", "statements"),
    ("BENCH_frontend.json", "skipped"),
    ("BENCH_frontend.json", "pairs"),
    ("BENCH_frontend.json", "edges"),
    ("BENCH_resilience.json", "queries"),
)


def _load(directory: Path, name: str) -> dict | None:
    path = directory / name
    if not path.exists():
        return None
    return json.loads(path.read_text())


def check(
    fresh_dir: Path,
    baseline_dir: Path,
    tolerance: float,
    only: frozenset[str] | None = None,
) -> list[str]:
    """All regression messages (empty when the gate passes).

    Every failing metric is reported — a missing benchmark file is
    collected as one failure (its metrics are skipped) rather than
    aborting the whole report, so one broken benchmark job cannot hide
    a regression in another.
    """
    failures: list[str] = []
    cache: dict[tuple[str, str], dict | None] = {}
    reported_missing: set[tuple[str, str]] = set()
    host_checked: set[str] = set()

    def load(kind: str, directory: Path, name: str) -> dict | None:
        key = (kind, name)
        if key not in cache:
            cache[key] = _load(directory, name)
            if cache[key] is None and key not in reported_missing:
                reported_missing.add(key)
                failures.append(
                    f"missing {kind} benchmark file: {directory / name}"
                )
        return cache[key]

    def note_host(name: str, fresh_doc: dict, base_doc: dict) -> None:
        """Surface cross-host comparisons — ratios still gate, but a
        reader of the log should know the machines differ."""
        if name in host_checked:
            return
        host_checked.add(name)
        fresh_host = (fresh_doc.get("cpus"), fresh_doc.get("host"))
        base_host = (base_doc.get("cpus"), base_doc.get("host"))
        if base_host == (None, None):
            return  # pre-hostmeta baseline: nothing to compare
        if fresh_host != base_host:
            print(
                f"  {'note':>10}  {name}: baseline host "
                f"{base_host} != fresh host {fresh_host}"
            )

    for name, metric in EXACT_METRICS:
        if only is not None and name not in only:
            continue
        fresh_doc = load("fresh", fresh_dir, name)
        base_doc = load("base", baseline_dir, name)
        if fresh_doc is None or base_doc is None:
            continue  # the missing file is already one failure
        note_host(name, fresh_doc, base_doc)
        fresh = fresh_doc.get(metric)
        base = base_doc.get(metric)
        if fresh != base:
            failures.append(
                f"{name}:{metric} workload drifted: baseline {base}, fresh {fresh}"
            )

    for name, metric, direction in GATED_METRICS:
        if only is not None and name not in only:
            continue
        fresh_doc = load("fresh", fresh_dir, name)
        base_doc = load("base", baseline_dir, name)
        if fresh_doc is None or base_doc is None:
            continue  # the missing file is already one failure
        note_host(name, fresh_doc, base_doc)
        fresh = fresh_doc.get(metric)
        base = base_doc.get(metric)
        if fresh is None or base is None:
            # A key that is *present but null* was deliberately
            # recorded as host-dependent (e.g. fleet scaling on a
            # small runner): skip the gate.  A *missing* key means the
            # benchmark broke: fail.
            if metric in fresh_doc and metric in base_doc:
                print(
                    f"  {'skipped':>10}  {name}:{metric}  recorded null "
                    "(host-dependent metric)"
                )
                continue
            failures.append(f"{name}:{metric} missing (baseline {base}, fresh {fresh})")
            continue
        if direction == "higher":
            floor = base * (1.0 - tolerance)
            ok = fresh >= floor
            verdict = f"must stay >= {floor:.4g}"
        else:
            ceiling = base * (1.0 + tolerance)
            ok = fresh <= ceiling
            verdict = f"must stay <= {ceiling:.4g}"
        status = "ok" if ok else "REGRESSION"
        print(
            f"  {status:>10}  {name}:{metric}  baseline={base:.4g}"
            f"  fresh={fresh:.4g}  ({verdict})"
        )
        if not ok:
            failures.append(
                f"{name}:{metric} regressed: baseline {base:.4g}, "
                f"fresh {fresh:.4g} ({verdict})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh-dir", type=Path, default=Path("."))
    parser.add_argument(
        "--baseline-dir", type=Path, default=Path("benchmarks/baselines")
    )
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    parser.add_argument(
        "--only",
        action="append",
        metavar="BENCH_FILE",
        help="gate only these artifact file names (repeatable); "
        "jobs that regenerate a single benchmark use this to skip "
        "the artifacts they did not produce",
    )
    args = parser.parse_args(argv)

    print(
        f"bench-regression gate (tolerance {args.tolerance:.0%}, "
        f"baselines from {args.baseline_dir})"
    )
    failures = check(
        args.fresh_dir,
        args.baseline_dir,
        args.tolerance,
        only=frozenset(args.only) if args.only else None,
    )
    if failures:
        print(f"\n{len(failures)} regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
