"""Benchmark: what client resilience costs when nothing goes wrong.

The retry/breaker machinery must be free on the clean path — every
``call`` now passes through a circuit-breaker admission check and a
retry loop, and this benchmark prices that plumbing.  One server is
warmed with the full query stream, then the same warm stream is timed
through two clients:

* **plain** — no RetryPolicy, no shared registry: the PR-7 shape;
* **resilient** — RetryPolicy + CircuitBreaker + counter registry,
  exactly what ``repro query --retries`` constructs.

Both passes are min-of-``ROUNDS`` and interleaved (plain, resilient,
plain, ...) so drift on a shared runner hits both sides equally.
Emits ``BENCH_resilience.json`` with the within-run overhead ratio
(resilient / plain, lower is better); the run itself hard-fails when
the clean-path overhead exceeds 5%.
"""

import json
import pathlib
import threading
import time

from repro.core.engine import queries_from_suite
from repro.ir.serde import query_to_dict
from repro.obs.hostmeta import host_metadata
from repro.obs.metrics import MetricsRegistry
from repro.perfect import load_suite
from repro.serve.client import CircuitBreaker, Client, RetryPolicy
from repro.serve.server import DependenceServer, ServeConfig

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
)
SCALE = 0.02
ROUNDS = 3
MAX_OVERHEAD = 1.05


def _wire_queries():
    queries = queries_from_suite(
        load_suite(include_symbolic=True, scale=SCALE)
    )
    return [
        {
            "query": query_to_dict(q.ref1, q.nest1, q.ref2, q.nest2),
            "directions": True,
        }
        for q in queries
    ]


def _timed_pass(client, params_list) -> float:
    start = time.perf_counter()
    for params in params_list:
        result = client.analyze(**params)
        assert "dependent" in result
    return time.perf_counter() - start


def test_bench_resilience_overhead(benchmark, capsys):
    """RetryPolicy + breaker cost <=5% on a warm clean-path stream."""
    params_list = _wire_queries()
    server = DependenceServer(
        ServeConfig(announce=False, queue_limit=50_000)
    )
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.started.wait(10)
    endpoint = f"tcp://{server.bound_host}:{server.bound_port}"

    def measure():
        plain = Client(endpoint, timeout=120.0, retry_for=5.0)
        resilient = Client(
            endpoint,
            timeout=120.0,
            retry_for=5.0,
            retry=RetryPolicy(),
            breaker=CircuitBreaker(),
            registry=MetricsRegistry(),
        )
        with plain, resilient:
            _timed_pass(plain, params_list)  # warm the server once
            plain_times, resilient_times = [], []
            for _ in range(ROUNDS):
                plain_times.append(_timed_pass(plain, params_list))
                resilient_times.append(_timed_pass(resilient, params_list))
            # The clean path must never have needed the machinery.
            assert resilient.registry.get("client.retries") == 0
            assert resilient.registry.get("client.reconnects") == 0
        return min(plain_times), min(resilient_times)

    plain_s, resilient_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    server.request_shutdown()
    thread.join(15)

    n = len(params_list)
    overhead = resilient_s / plain_s
    payload = {
        **host_metadata(),
        "queries": n,
        "rounds": ROUNDS,
        "plain_warm_s": round(plain_s, 4),
        "resilient_warm_s": round(resilient_s, 4),
        "plain_warm_qps": round(n / plain_s, 1),
        "resilient_warm_qps": round(n / resilient_s, 1),
        "resilient_overhead": round(overhead, 4),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"  plain {payload['plain_warm_qps']} qps, resilient "
            f"{payload['resilient_warm_qps']} qps "
            f"(overhead x{overhead:.3f})"
        )
        print(f"  wrote {BENCH_PATH.name}")

    # Acceptance: resilience is free when nothing fails.
    assert overhead <= MAX_OVERHEAD, (
        f"clean-path overhead x{overhead:.3f} exceeds x{MAX_OVERHEAD}"
    )
