"""Benchmark: section 7 — exact cascade vs traditional inexact tests.

The paper: the simple GCD test plus Banerjee's bounds test found 415 of
482 independent pairs (missing 16%) and reported 22% more direction
vectors than the exact answer.  This regenerates both comparisons on
the synthetic workload's unique cases.
"""

from repro.harness.experiments import run_baseline_comparison


def test_bench_baselines(benchmark, capsys):
    result = benchmark.pedantic(
        run_baseline_comparison, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(result.text)
    # The inexact pipeline must miss some independent pairs ...
    assert result.extra["independent_baseline"] < result.extra["independent_exact"]
    # ... and never report fewer direction vectors than the exact answer.
    assert result.extra["vectors_baseline"] >= result.extra["vectors_exact"]
