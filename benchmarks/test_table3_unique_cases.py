"""Benchmark: Table 3 — tests run on unique cases only (memoized).

The paper's headline memoization result: 5,679 test cases collapse to
332 actual test executions.  The benchmark time shows the memoized
workload cost (compare with the Table 1 benchmark for the speedup).
"""

from repro.harness.experiments import run_table3


def test_bench_table3(benchmark, capsys):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.text)
        print(
            f"memoization: {result.extra['total_cases']:,} cases -> "
            f"{result.extra['unique_tests']:,} tests"
        )
    assert result.extra["total_cases"] == 5_679
    assert result.extra["unique_tests"] == 332  # paper: 5,679 -> 332
