"""Benchmark: Table 5 — direction vectors with both prunings.

Unused-variable elimination plus distance-vector pruning bring the
direction-vector cost back down (paper: ~12,500 -> ~900 tests).  Also
prints the section-7 per-test outcome splits collected from this run.
"""

from repro.harness.experiments import run_table4, run_table5


def test_bench_table5(benchmark, capsys):
    result = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.text)
    assert result.extra["total_tests"] < 1_500


def test_bench_pruning_ratio(benchmark, capsys):
    """The headline Table 4 vs Table 5 reduction, in one number."""

    def both():
        return run_table4(scale=0.25), run_table5(scale=0.25)

    naive, pruned = benchmark.pedantic(both, rounds=1, iterations=1)
    ratio = naive.extra["total_tests"] / max(1, pruned.extra["total_tests"])
    with capsys.disabled():
        print()
        print(
            f"direction-test reduction: {naive.extra['total_tests']:,} -> "
            f"{pruned.extra['total_tests']:,}  ({ratio:.1f}x; paper ~14x)"
        )
    assert ratio > 3.0
