"""Benchmark: Table 6 — total dependence-testing cost per program.

The paper's claim is that exact analysis adds ~3% to `f77 -O3` compile
time.  No Fortran compiler exists here, so the measured column is our
analyzer's wall-clock cost per synthetic program and the reference
column is the paper's published compile seconds (see DESIGN.md).
"""

from repro.harness.experiments import run_table6


def test_bench_table6(benchmark, capsys):
    result = benchmark.pedantic(run_table6, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.text)
    # The whole suite's dependence testing must stay far below the
    # paper-reported compile times (the "inexpensive" claim).
    assert result.extra["measured_seconds"] < 60.0
