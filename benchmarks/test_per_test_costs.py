"""Benchmark: section 7's per-test costs and the cascade ordering.

The paper timed each test on a 12-MIPS R2000: SVPC ~0.1 ms, Acyclic
~0.5 ms, Loop Residue ~0.9 ms, Fourier-Motzkin ~3 ms.  Absolute times
are hardware-bound; the reproducible claim is the *ordering* — the
cascade tries cheaper tests first — and above all that Fourier-Motzkin
is the most expensive, which these microbenchmarks measure directly on
representative workload systems.
"""

import pytest

from repro.deptests.acyclic import AcyclicTest
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.deptests.loop_residue import LoopResidueTest
from repro.deptests.svpc import SvpcTest
from repro.harness.timing import representative_system

_TESTS = {
    "svpc": SvpcTest(),
    "acyclic": AcyclicTest(),
    "loop_residue": LoopResidueTest(),
    "fourier_motzkin": FourierMotzkinTest(),
}


@pytest.mark.parametrize("name", list(_TESTS))
def test_bench_single_test(benchmark, name):
    test = _TESTS[name]
    systems = [representative_system(name, idx) for idx in range(5)]

    def run():
        for system in systems:
            test.run(system)

    benchmark(run)


def test_bench_fm_is_most_expensive(benchmark, capsys):
    """One combined measurement asserting the cascade's cost ordering."""
    import time

    def measure():
        out = {}
        for name, test in _TESTS.items():
            systems = [representative_system(name, idx) for idx in range(5)]
            start = time.perf_counter()
            for _ in range(100):
                for system in systems:
                    test.run(system)
            out[name] = time.perf_counter() - start
        return out

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        base = times["svpc"]
        print()
        for name, t in times.items():
            print(
                f"  {name:18s} {1e6 * t / 500:8.1f} usec/test "
                f"({t / base:.1f}x svpc)"
            )
    assert times["fourier_motzkin"] > times["svpc"]
