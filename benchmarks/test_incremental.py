"""Benchmark: incremental re-analysis vs cold full re-analysis.

The incremental engine's pitch is concrete: after a single-statement
edit on a ~100-nest program, re-analysis should touch **< 10% of the
pairs** and finish **>= 5x faster** than a cold full run — while
producing the bit-identical graph (``tests/test_incremental.py`` and
``scripts/incremental_smoke.py`` enforce the identity; this file
measures the price).

Emits ``BENCH_incremental.json`` at the repository root.  Raw seconds
are recorded for the perf trajectory only; the regression gate
consumes the within-run ``warm_delta_speedup`` ratio and the
``requery_fraction_max`` bound plus the exact workload invariants
(``statements``, ``pairs``).
"""

import json
import pathlib
import random
import statistics
import time

from repro.core.incremental import IncrementalSession, full_graph
from repro.fuzz.edits import mutate, storm_program
from repro.obs.hostmeta import host_metadata

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "BENCH_incremental.json"
)

SEED = 2026
STATEMENTS = 100
ARRAYS = 12
N_EDITS = 8


def test_bench_incremental(benchmark, capsys):
    """Single-statement edits: <10% of pairs re-queried, >=5x warm."""
    program = storm_program(SEED, statements=STATEMENTS, arrays=ARRAYS)

    def measure():
        # Cold full re-analysis: what every edit would cost without
        # the delta engine (fresh analyzer, fresh memo, all pairs).
        cold_times = []
        for _ in range(3):
            start = time.perf_counter()
            full_graph(program)
            cold_times.append(time.perf_counter() - start)
        cold_s = min(cold_times)

        session = IncrementalSession()
        first = session.update(program)

        rng = random.Random(99)
        delta_times = []
        fractions = []
        for _ in range(N_EDITS):
            edited, _description = mutate(program, rng, arrays=ARRAYS)
            start = time.perf_counter()
            report = session.update(edited)
            delta_times.append(time.perf_counter() - start)
            fractions.append(report.requery_fraction)
            # each trial edits the same base, so re-seed between them
            session.update(program)
        return cold_s, first, delta_times, fractions

    cold_s, first, delta_times, fractions = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    # min, not mean: the noise-free estimate on a shared runner (GC
    # pauses and scheduler jitter only ever add time).
    warm_delta_s = min(delta_times)
    speedup = cold_s / warm_delta_s
    payload = {
        **host_metadata(),
        "statements": STATEMENTS,
        "pairs": first.total_pairs,
        "edits": N_EDITS,
        "cold_full_s": round(cold_s, 4),
        "first_update_s": round(first.elapsed_s, 4),
        "warm_delta_ms": round(warm_delta_s * 1000.0, 3),
        "warm_delta_speedup": round(speedup, 2),
        "requery_fraction_mean": round(statistics.mean(fractions), 4),
        "requery_fraction_max": round(max(fractions), 4),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"  cold full {1e3 * cold_s:.1f} ms, warm delta "
            f"{1e3 * warm_delta_s:.2f} ms ({payload['warm_delta_speedup']}x)"
        )
        print(
            f"  {first.total_pairs} pairs; re-query fraction mean "
            f"{payload['requery_fraction_mean']:.2%}, max "
            f"{payload['requery_fraction_max']:.2%}"
        )
        print(f"  wrote {BENCH_PATH.name}")

    # The headline claims, enforced in-run (the regression gate also
    # diffs them against the committed baseline with tolerance).
    assert max(fractions) < 0.10
    assert speedup >= 5.0
