"""Benchmark: frontend extraction over the vendored real-code corpus.

Extracts every Python/C file under ``tests/corpus/frontends/`` through
:mod:`repro.frontends`, builds each file's dependence graph, and times
repeated extraction sweeps.

Emits ``BENCH_frontend.json`` at the repository root.  Raw throughput
numbers vary across runners and are recorded for the perf trajectory
only; the regression gate consumes the exact workload shape — corpus
files, nests extracted, statements lowered, pairs analyzed — which
must match the committed baseline bit-for-bit (a drifting nest count
means a frontend silently lost or invented loops).
"""

import json
import pathlib
import time

from repro.core.analyzer import DependenceAnalyzer
from repro.core.graph import build_graph
from repro.frontends import extract_source
from repro.ir.program import reference_pairs
from repro.obs.hostmeta import host_metadata

REPO = pathlib.Path(__file__).resolve().parent.parent
CORPUS = REPO / "tests" / "corpus" / "frontends"
BENCH_PATH = REPO / "BENCH_frontend.json"
SWEEPS = 20


def _corpus() -> list[tuple[str, str, str]]:
    out = []
    for path in sorted(CORPUS.iterdir()):
        if path.suffix == ".py":
            out.append((path.name, "python", path.read_text()))
        elif path.suffix == ".c":
            out.append((path.name, "c", path.read_text()))
    return out


def test_bench_frontend(benchmark, capsys):
    """Corpus shape is pinned exactly; sweep timings recorded to trend."""
    corpus = _corpus()
    assert corpus, f"empty corpus at {CORPUS}"

    def measure():
        start = time.perf_counter()
        for _ in range(SWEEPS):
            extractions = [
                extract_source(text, lang=lang, name=name)
                for name, lang, text in corpus
            ]
        t_extract = time.perf_counter() - start

        start = time.perf_counter()
        graphs = [
            build_graph(ext.program, DependenceAnalyzer())
            for ext in extractions
        ]
        t_analyze = time.perf_counter() - start
        return extractions, graphs, t_extract, t_analyze

    extractions, graphs, t_extract, t_analyze = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )

    nests = sum(len(ext.nests) for ext in extractions)
    statements = sum(len(ext.program.statements) for ext in extractions)
    skipped = sum(len(ext.skipped) for ext in extractions)
    pairs = sum(
        len(reference_pairs(ext.program)) for ext in extractions
    )
    edges = sum(len(graph.edge_dicts()) for graph in graphs)
    sweep_files = len(corpus) * SWEEPS
    payload = {
        **host_metadata(),
        "corpus_files": len(corpus),
        "nests": nests,
        "statements": statements,
        "skipped": skipped,
        "pairs": pairs,
        "edges": edges,
        "extract_sweeps": SWEEPS,
        "extract_s": round(t_extract, 4),
        "extract_files_per_s": round(sweep_files / t_extract, 1),
        "analyze_s": round(t_analyze, 4),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"  {len(corpus)} corpus files -> {nests} nests, "
            f"{statements} statements, {skipped} skipped, {pairs} pairs, "
            f"{edges} edges"
        )
        print(
            f"  extraction {payload['extract_files_per_s']} files/s "
            f"({SWEEPS} sweeps), analysis {1e3 * t_analyze:.1f} ms"
        )
        print(f"  wrote {BENCH_PATH.name}")

    # A frontend that silently drops statements shows up here before
    # the exact gate even runs.
    assert statements > 0 and pairs > 0 and edges > 0
