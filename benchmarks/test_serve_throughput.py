"""Benchmark: the dependence daemon under concurrent client load.

Workload: the synthetic PERFECT corpus serialized to wire queries and
split across ``N_CLIENTS`` concurrent TCP clients, each issuing its
slice as individual request/response round trips (the latency-bound
shape an editor or build integration produces).  Two passes run against
one server:

* **cold** — the server starts with empty memo tables; every unique
  problem pays its analysis;
* **warm** — the same stream again; the shared tables answer from
  memory.

Emits ``BENCH_serve.json`` at the repository root with throughput
(qps), per-request latency percentiles (p50/p99) and the warm-pass
cache hit rate.  The wall-clock numbers vary across runners; the gated
metric is the warm hit rate (the serving layer's whole point: a warm
second run must answer >=90% of queries from cache).
"""

import json
import pathlib
import threading
import time

from repro.core.engine import queries_from_suite
from repro.ir.serde import query_to_dict
from repro.obs.hostmeta import host_metadata
from repro.perfect import load_suite
from repro.serve.client import ServeClient
from repro.serve.server import DependenceServer, ServeConfig

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve.json"
)
N_CLIENTS = 8
SCALE = 0.02


def _wire_queries():
    queries = queries_from_suite(
        load_suite(include_symbolic=True, scale=SCALE)
    )
    return [
        {
            "query": query_to_dict(q.ref1, q.nest1, q.ref2, q.nest2),
            "directions": True,
        }
        for q in queries
    ]


def _run_pass(host, port, params_list):
    """One full stream across N_CLIENTS concurrent clients.

    Returns (elapsed_s, per-request latencies in seconds).
    """
    slices = [params_list[i::N_CLIENTS] for i in range(N_CLIENTS)]
    latencies: list[list[float]] = [[] for _ in range(N_CLIENTS)]
    errors: list[BaseException] = []

    def worker(index):
        try:
            with ServeClient.connect(
                host, port, timeout=120.0, retry_for=5.0
            ) as client:
                for params in slices[index]:
                    start = time.perf_counter()
                    result = client.analyze(**params)
                    latencies[index].append(time.perf_counter() - start)
                    assert "dependent" in result
        except BaseException as err:  # pragma: no cover
            errors.append(err)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(N_CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed, [lat for per in latencies for lat in per]


def _percentile(values, fraction):
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _bounds_counters(client):
    stats = client.stats()
    tables = stats["cache"]
    # A zero-copy fast-lane answer never probes the memo tables; it is
    # still a query answered from cache, so it counts on both sides.
    fastlane = stats["registry"]["scalars"].get("serve.fastlane.hits", 0)
    return (
        tables["no_bounds"]["queries"]
        + tables["with_bounds"]["queries"]
        + fastlane,
        tables["no_bounds"]["hits"] + tables["with_bounds"]["hits"] + fastlane,
    )


def test_bench_serve_throughput(benchmark, capsys):
    """Concurrent serving: warm pass answers >=90% from cache."""
    params_list = _wire_queries()
    server = DependenceServer(
        ServeConfig(announce=False, queue_limit=50_000)
    )
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.started.wait(10)
    host, port = server.bound_host, server.bound_port

    def measure():
        control = ServeClient.connect(host, port, retry_for=5.0)
        t_cold, lat_cold = _run_pass(host, port, params_list)
        cold_queries, cold_hits = _bounds_counters(control)
        t_warm, lat_warm = _run_pass(host, port, params_list)
        warm_queries, warm_hits = _bounds_counters(control)
        control.close()
        warm_hit_rate = (warm_hits - cold_hits) / (
            warm_queries - cold_queries
        )
        return t_cold, lat_cold, t_warm, lat_warm, warm_hit_rate

    t_cold, lat_cold, t_warm, lat_warm, warm_hit_rate = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    server.request_shutdown()
    thread.join(15)

    n = len(params_list)
    payload = {
        **host_metadata(),
        "queries": n,
        "clients": N_CLIENTS,
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "cold_qps": round(n / t_cold, 1),
        "warm_qps": round(n / t_warm, 1),
        "cold_p50_ms": round(1e3 * _percentile(lat_cold, 0.50), 3),
        "cold_p99_ms": round(1e3 * _percentile(lat_cold, 0.99), 3),
        "warm_p50_ms": round(1e3 * _percentile(lat_warm, 0.50), 3),
        "warm_p99_ms": round(1e3 * _percentile(lat_warm, 0.99), 3),
        "warm_hit_rate": round(warm_hit_rate, 4),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"  cold {payload['cold_qps']} qps "
            f"(p50 {payload['cold_p50_ms']} ms, "
            f"p99 {payload['cold_p99_ms']} ms); warm "
            f"{payload['warm_qps']} qps "
            f"(p50 {payload['warm_p50_ms']} ms, "
            f"p99 {payload['warm_p99_ms']} ms)"
        )
        print(f"  warm cache hit rate {warm_hit_rate:.1%}")
        print(f"  wrote {BENCH_PATH.name}")

    # Acceptance: the warm stream answers >=90% of memo probes from
    # the shared tables.
    assert warm_hit_rate >= 0.90
