"""Ablation benchmarks for the paper's three design choices.

1. **Cascading vs. backup-only** — decide the workload's unique systems
   with the full cascade vs. going straight to Fourier-Motzkin: the
   cascade exists because cheap special cases dominate.
2. **Memoization on/off** — the same query stream with and without the
   two-table scheme.
3. **Pruning decomposition** — direction-vector test counts under each
   combination of unused-variable elimination and distance pruning,
   isolating each optimization's contribution to the Table 4 -> 5 drop.
4. **Dimension-by-dimension** — section 6's separable-nest shortcut vs.
   hierarchical refinement on separable inputs.
"""

import time

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.harness.timing import representative_system
from repro.ir import builder as B
from repro.perfect import PROGRAM_SPECS, generate_program


def _unique_queries(max_programs=6):
    out = []
    for spec in PROGRAM_SPECS[:max_programs]:
        seen = set()
        for query in generate_program(spec):
            key = (query.ref1, query.ref2, query.nest1)
            if key in seen or query.bucket == "constant":
                continue
            seen.add(key)
            out.append(query)
    return out


def test_bench_cascade_vs_fm_only(benchmark, capsys):
    """The cascade should comfortably beat a Fourier-Motzkin-only policy."""
    systems = [
        representative_system(name, idx)
        for name in ("svpc", "acyclic", "loop_residue")
        for idx in range(6)
    ]
    fm = FourierMotzkinTest()
    analyzer = DependenceAnalyzer()

    def measure():
        start = time.perf_counter()
        for _ in range(50):
            for system in systems:
                analyzer._run_cascade(system, record=False)
        t_cascade = time.perf_counter() - start
        start = time.perf_counter()
        for _ in range(50):
            for system in systems:
                fm.run(system)
        t_fm = time.perf_counter() - start
        return t_cascade, t_fm

    t_cascade, t_fm = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            f"cascade {1e3 * t_cascade:.1f} ms vs FM-only {1e3 * t_fm:.1f} ms "
            f"({t_fm / t_cascade:.1f}x)"
        )
    assert t_cascade < t_fm


def test_bench_memoization_ablation(benchmark, capsys):
    """Full query stream: memo off vs the paper's two-table scheme."""
    spec = next(s for s in PROGRAM_SPECS if s.name == "SR")  # most repetitive
    queries = generate_program(spec)

    def run(memoizer):
        analyzer = DependenceAnalyzer(memoizer=memoizer, want_witness=False)
        start = time.perf_counter()
        for query in queries:
            analyzer.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
        return time.perf_counter() - start, sum(
            analyzer.stats.decided_by.values()
        )

    def measure():
        return run(None), run(Memoizer())

    (t_off, tests_off), (t_on, tests_on) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            f"SR without memo: {tests_off} tests, {1e3 * t_off:.0f} ms; "
            f"with memo: {tests_on} tests, {1e3 * t_on:.0f} ms"
        )
    assert tests_on < tests_off / 10  # paper: 1,290 -> 14 on SR


def test_bench_pruning_decomposition(benchmark, capsys):
    """Which pruning contributes what to the Table 4 -> Table 5 drop."""
    queries = _unique_queries()

    def run(prune_unused, prune_distance):
        analyzer = DependenceAnalyzer(
            memoizer=Memoizer(),
            want_witness=False,
            eliminate_unused=prune_unused,
        )
        for query in queries:
            analyzer.directions(
                query.ref1,
                query.nest1,
                query.ref2,
                query.nest2,
                prune_unused=prune_unused,
                prune_distance=prune_distance,
            )
        return sum(analyzer.stats.direction_tests.values())

    def measure():
        return {
            "none": run(False, False),
            "unused only": run(True, False),
            "distance only": run(False, True),
            "both (Table 5)": run(True, True),
        }

    counts = benchmark.pedantic(measure, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for label, count in counts.items():
            print(f"  {label:16s} {count:6,} direction tests")
    assert counts["both (Table 5)"] < counts["unused only"] <= counts["none"]
    assert counts["both (Table 5)"] < counts["distance only"] <= counts["none"]


def test_bench_dimension_by_dimension(benchmark, capsys):
    """Separable 3-deep nest: product construction vs hierarchy."""
    nest = B.nest(("i", 1, 9), ("j", 1, 9), ("k", 1, 9))
    w = B.ref("a", [B.v("i"), B.v("j"), B.v("k")], write=True)
    r = B.ref("a", [B.c(5), B.c(5), B.c(5)])

    def run(dim):
        analyzer = DependenceAnalyzer()
        result = analyzer.directions(
            w, nest, r, nest,
            prune_unused=False,
            prune_distance=False,
            dimension_by_dimension=dim,
        )
        return result.tests_performed, result.elementary_vectors()

    def measure():
        return run(False), run(True)

    (hier_tests, hier_vecs), (dim_tests, dim_vecs) = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            f"hierarchical {hier_tests} tests vs dimension-by-dimension "
            f"{dim_tests} tests (same {len(dim_vecs)} vectors)"
        )
    assert dim_vecs == hier_vecs
    assert dim_tests < hier_tests
