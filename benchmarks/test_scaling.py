"""Scaling microbenchmarks: how analyzer cost grows with problem size.

The paper's complexity argument: the Extended GCD transform keeps the
cascade's inputs small (one variable eliminated per independent
equation, equality constraints folded away), so the common tests stay
effectively linear.  These benchmarks chart analyze() cost against
nest depth and coefficient magnitude, and Fourier-Motzkin's growth on
its worst-case dense systems.
"""

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.ir import builder as B
from repro.system.constraints import ConstraintSystem


def _deep_query(depth: int):
    loops = [(f"i{k}", 1, 10) for k in range(depth)]
    nest = B.nest(*loops)
    subs = [B.v(f"i{k}") + (1 if k == 0 else 0) for k in range(depth)]
    subs2 = [B.v(f"i{k}") for k in range(depth)]
    return B.ref("a", subs, write=True), B.ref("a", subs2), nest


@pytest.mark.parametrize("depth", [1, 2, 4, 6])
def test_bench_analyze_vs_depth(benchmark, depth):
    write, read, nest = _deep_query(depth)
    analyzer = DependenceAnalyzer(want_witness=False)

    def run():
        return analyzer.analyze(write, nest, read, nest)

    result = benchmark(run)
    assert result.dependent


@pytest.mark.parametrize("magnitude", [1, 100, 10**6, 10**12])
def test_bench_analyze_vs_coefficients(benchmark, magnitude):
    """Exact bignum arithmetic: cost must stay flat-ish in magnitude."""
    nest = B.nest(("i", 1, magnitude * 10))
    write = B.ref("a", [B.v("i") * magnitude], write=True)
    read = B.ref("a", [B.v("i") * magnitude + magnitude // 2 + 1])
    analyzer = DependenceAnalyzer(want_witness=False)

    def run():
        return analyzer.analyze(write, nest, read, nest)

    benchmark(run)


@pytest.mark.parametrize("n_vars", [3, 5, 7])
def test_bench_fm_dense(benchmark, n_vars):
    """Fourier-Motzkin on dense systems — the cost the cascade avoids."""
    system = ConstraintSystem(tuple(f"t{k}" for k in range(n_vars)))
    for k in range(n_vars):
        row = [1 if j <= k else -1 for j in range(n_vars)]
        system.add(row, 10 + k)
        system.add([-c for c in row], 5)
    for k in range(n_vars):
        box = [0] * n_vars
        box[k] = 1
        system.add(box, 50)
        system.add([-c for c in box], 50)
    fm = FourierMotzkinTest()

    def run():
        return fm.run(system)

    result = benchmark(run)
    assert result.verdict is not None
