"""Benchmark: Table 2 — memoization unique-case percentages.

Runs the workload under both memo key schemes (simple, and improved
with unused loop indices eliminated) and reports the per-program
percentage of unique cases for the no-bounds (GCD) and with-bounds
tables — the paper's Table 2.
"""

from repro.harness.experiments import run_table2


def test_bench_table2(benchmark, capsys):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.text)
    # Paper: the with-bounds table sees exactly the 5,679 test cases.
    wb_total = sum(row[4] for row in result.rows)
    assert wb_total == 5_679
    nb_total = sum(row[1] for row in result.rows)
    assert nb_total == 6_063
    # The improved scheme is never worse than the simple one.
    for row in result.rows:
        assert row[6] <= row[5] + 1e-9
