"""Benchmark: Table 1 — plain dependence queries, no memoization.

Regenerates the paper's Table 1 (which test decides each case, per
program).  The benchmark time is the cost of pushing the full
unmemoized PERFECT-shaped workload (17,922 queries) through the
cascade; the printed table is the experiment output.
"""

from repro.harness.experiments import run_table1

PAPER_TOTALS = [11_859, 384, 5_176, 323, 6, 174]


def test_bench_table1(benchmark, capsys):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.text)
    totals = [0] * 6
    for row in result.rows:
        for k in range(6):
            totals[k] += row[k + 2]
    assert totals == PAPER_TOTALS
