"""Benchmark: Figure 1 — the Loop Residue constraint graph example.

The paper's only figure shows the residue graph for the constraint set
{t1 >= 1, t3 <= 4, t1 <= t3 - 4}: a cycle t1 -> t3 -> n0 -> t1 of
value -4 + 4 - 1 = -1, proving independence.  The benchmark times the
graph construction + negative-cycle detection on that exact system.
"""

from repro.deptests.base import Verdict
from repro.deptests.loop_residue import LoopResidueTest, build_residue_graph
from repro.system.constraints import ConstraintSystem


def _figure1_system() -> ConstraintSystem:
    system = ConstraintSystem(("t1", "t3"))
    system.add([-1, 0], -1)  # t1 >= 1
    system.add([0, 1], 4)  # t3 <= 4
    system.add([1, -1], -4)  # t1 <= t3 - 4
    return system


def test_bench_figure1(benchmark, capsys):
    system = _figure1_system()
    test = LoopResidueTest()
    result = benchmark(lambda: test.run(system))
    graph = build_residue_graph(system)
    with capsys.disabled():
        print()
        print("Figure 1 residue graph arcs (src, dst, value); node -1 = n0:")
        for arc in sorted(graph.arcs):
            print(f"  {arc}")
        print("negative cycle found -> independent")
    assert result.verdict is Verdict.INDEPENDENT
    assert (0, 1, -4) in graph.arcs  # t1 -> t3 value -4
    assert (1, -1, 4) in graph.arcs  # t3 -> n0 value 4
    assert (-1, 0, -1) in graph.arcs  # n0 -> t1 value -1
