"""Benchmark: the sharded batch engine vs the serial per-pair driver.

Workload: the full synthetic PERFECT corpus (13 programs, ~18k queries
at scale 1.0, symbolic cases included) — the multi-program shape the
paper's last paragraph imagines when it suggests storing the hash table
across compilations.

Three configurations are timed:

* **serial** — the per-pair driver: one analyzer with one memoizer,
  every query analyzed in sequence (repeat queries still pay the full
  per-call probe chain);
* **sharded (cold)** — the batch engine with 2 workers: constant
  screen, structural + canonical dedup, cost-balanced shards,
  map-reduce merge of stats and memo tables;
* **sharded (warm)** — the same run warm-started from the cold run's
  merged table.

Each configuration is timed three times and the minimum is kept: the
flat-path rework brought serial and batch within tens of milliseconds
of each other, so a single sample on a shared runner would compare
scheduler noise, not the pipelines.

Emits ``BENCH_batch.json`` at the repository root with the wall-clock
numbers and the cold/warm with-bounds memo hit rates for the perf
trajectory.
"""

import json
import pathlib
import time

from repro.core.analyzer import DependenceAnalyzer
from repro.core.engine import analyze_batch, queries_from_suite
from repro.core.memo import Memoizer
from repro.core.persist import dumps, loads
from repro.obs.hostmeta import host_metadata
from repro.perfect import load_suite

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"
)
JOBS = 2


def _corpus():
    return queries_from_suite(load_suite(include_symbolic=True, scale=1.0))


def test_bench_batch_engine_vs_serial(benchmark, capsys):
    """Sharded engine beats the serial driver; warm beats cold."""
    queries = _corpus()

    def serial():
        analyzer = DependenceAnalyzer(
            memoizer=Memoizer(), want_witness=False
        )
        verdicts = [
            analyzer.analyze(q.ref1, q.nest1, q.ref2, q.nest2).dependent
            for q in queries
        ]
        return analyzer, verdicts

    ROUNDS = 3

    def measure():
        t_serial = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            _, serial_verdicts = serial()
            t_serial = min(t_serial, time.perf_counter() - start)

        t_cold = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            cold = analyze_batch(queries, jobs=JOBS, want_directions=False)
            t_cold = min(t_cold, time.perf_counter() - start)

        warm_table = loads(dumps(cold.memoizer))
        t_warm = float("inf")
        for _ in range(ROUNDS):
            start = time.perf_counter()
            warm = analyze_batch(
                queries, jobs=JOBS, want_directions=False, warm=warm_table
            )
            t_warm = min(t_warm, time.perf_counter() - start)
        return t_serial, t_cold, t_warm, serial_verdicts, cold, warm

    t_serial, t_cold, t_warm, serial_verdicts, cold, warm = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )

    # Determinism: the sharded engine agrees with the serial driver on
    # every verdict, cold and warm.
    assert [o.result.dependent for o in cold.outcomes] == serial_verdicts
    assert [o.result.dependent for o in warm.outcomes] == serial_verdicts

    payload = {
        **host_metadata(),
        "queries": cold.n_queries,
        "unique_pairs": cold.n_unique_pairs,
        "unique_problems": cold.n_unique_problems,
        "constant_screened": cold.n_screened,
        "jobs": JOBS,
        "serial_s": round(t_serial, 4),
        "sharded_cold_s": round(t_cold, 4),
        "sharded_warm_s": round(t_warm, 4),
        "speedup_cold_vs_serial": round(t_serial / t_cold, 2),
        "speedup_warm_vs_serial": round(t_serial / t_warm, 2),
        "cold_tests_run": sum(cold.stats.decided_by.values()),
        "warm_tests_run": sum(warm.stats.decided_by.values()),
        "cold_hit_rate_bounds": round(cold.hit_rate_bounds(), 4),
        "warm_hit_rate_bounds": round(warm.hit_rate_bounds(), 4),
        "cold_hit_rate_no_bounds": round(cold.hit_rate_no_bounds(), 4),
        "warm_hit_rate_no_bounds": round(warm.hit_rate_no_bounds(), 4),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"  serial {1e3 * t_serial:.0f} ms; sharded cold "
            f"{1e3 * t_cold:.0f} ms ({t_serial / t_cold:.1f}x); warm "
            f"{1e3 * t_warm:.0f} ms ({t_serial / t_warm:.1f}x)"
        )
        print(
            f"  with-bounds hit rate cold {cold.hit_rate_bounds():.1%} "
            f"-> warm {warm.hit_rate_bounds():.1%}; tests "
            f"{payload['cold_tests_run']} -> {payload['warm_tests_run']}"
        )
        print(f"  wrote {BENCH_PATH.name}")

    # Acceptance: the sharded engine beats the serial driver with >=2
    # workers, and warm-start strictly raises the with-bounds hit rate.
    assert t_cold < t_serial
    assert warm.hit_rate_bounds() > cold.hit_rate_bounds()
    assert payload["warm_tests_run"] == 0
