"""Benchmark: the flat-array query inner loop and byte-keyed memo.

Three micro-costs govern warm serving and batch throughput after the
flat-path rework:

* **memo probe** — a warm with-bounds hit must be one native dict
  lookup on an interned byte key (no tuple construction, no bucket
  walk);
* **key intern** — zigzag-varint encoding plus intern of a problem's
  key vector, the per-unique-problem cost of entering the byte
  keyspace;
* **warm query** — a full ``analyze`` + ``directions`` round trip when
  every answer comes from the memo tables.

Emits ``BENCH_hotpath.json`` at the repository root.  Raw nanosecond
numbers vary across runners and are recorded for the perf trajectory
only; the regression gate consumes the within-run ``warm_speedup``
ratio (cold stream vs warm stream, measured seconds apart on one
machine) and the exact workload size.
"""

import json
import pathlib
import time

from repro.core.analyzer import DependenceAnalyzer
from repro.core.engine import queries_from_suite
from repro.core.memo import Memoizer, encode_key, intern_key
from repro.obs.hostmeta import host_metadata
from repro.perfect import load_suite
from repro.system.depsystem import build_problem

BENCH_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
)
SCALE = 0.1


def _queries():
    return queries_from_suite(load_suite(include_symbolic=True, scale=SCALE))


def _stream(analyzer, queries):
    start = time.perf_counter()
    for q in queries:
        analyzer.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
        analyzer.directions(q.ref1, q.nest1, q.ref2, q.nest2)
    return time.perf_counter() - start


def test_bench_hotpath(benchmark, capsys):
    """Warm stream >=2x cold; probe/intern costs recorded for trending."""
    queries = _queries()

    def measure():
        analyzer = DependenceAnalyzer(memoizer=Memoizer(), want_witness=False)
        t_cold = _stream(analyzer, queries)
        t_warm = _stream(analyzer, queries)

        # Memo probe: repeated warm lookups over the table's own keys.
        table = analyzer.memoizer.with_bounds
        keys = [key for key, _ in table.items()][:512]
        reps = max(1, 200_000 // len(keys))
        start = time.perf_counter()
        for _ in range(reps):
            for key in keys:
                table.lookup(key)
        probe_ns = (time.perf_counter() - start) / (reps * len(keys)) * 1e9

        # Key intern: encode + intern the integer key vectors of real
        # problems (the per-unique-problem byte-keyspace entry cost).
        problems = [
            build_problem(q.ref1, q.nest1, q.ref2, q.nest2)
            for q in queries[:200]
        ]
        vectors = [p.key_vector(with_bounds=True) for p in problems]
        reps = max(1, 50_000 // len(vectors))
        start = time.perf_counter()
        for _ in range(reps):
            for vector in vectors:
                intern_key(encode_key(vector))
        intern_ns = (
            (time.perf_counter() - start) / (reps * len(vectors)) * 1e9
        )
        return t_cold, t_warm, probe_ns, intern_ns

    t_cold, t_warm, probe_ns, intern_ns = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    n = len(queries)
    payload = {
        **host_metadata(),
        "queries": n,
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "warm_speedup": round(t_cold / t_warm, 3),
        "warm_query_us": round(1e6 * t_warm / n, 3),
        "memo_probe_ns": round(probe_ns, 1),
        "key_intern_ns": round(intern_ns, 1),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    with capsys.disabled():
        print()
        print(
            f"  cold {1e3 * t_cold:.1f} ms, warm {1e3 * t_warm:.1f} ms "
            f"({payload['warm_speedup']}x, "
            f"{payload['warm_query_us']} us/warm query)"
        )
        print(
            f"  memo probe {payload['memo_probe_ns']} ns, "
            f"key intern {payload['key_intern_ns']} ns"
        )
        print(f"  wrote {BENCH_PATH.name}")

    # The memo's whole point: a fully warm stream must be much cheaper
    # than the cold one on the same machine seconds earlier.
    assert t_cold / t_warm >= 2.0
