"""Benchmark: Table 7 — direction vectors with symbolic constraints.

Adds the section-8 symbolic-term cases to the workload (unknowns in
subscripts and loop bounds).  The paper measured ~900 -> ~1,060 tests;
the point is that exact symbolic handling costs very little extra.
"""

from repro.harness.experiments import run_table5, run_table7


def test_bench_table7(benchmark, capsys):
    result = benchmark.pedantic(run_table7, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.text)
    baseline = run_table5()
    growth = result.extra["total_tests"] / max(1, baseline.extra["total_tests"])
    with capsys.disabled():
        print(
            f"symbolic growth: {baseline.extra['total_tests']:,} -> "
            f"{result.extra['total_tests']:,} tests "
            f"({100 * (growth - 1):.0f}%; paper ~18%)"
        )
    # Paper: 893 -> 1,058 tests, about 18% growth; demand "small".
    assert 1.0 < growth < 2.0
