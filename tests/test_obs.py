"""Tests for the observability layer: events, sinks, metrics registry.

Covers the serialized forms (event dicts, JSONL, registry dicts), the
shard-merge determinism of event streams and counters, the golden
per-stage decision traces, and the deprecation shims around the old
cascade entry points.
"""

import io
import warnings

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.core.stats import TEST_ORDER, AnalyzerStats
from repro.deptests.base import Verdict
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.deptests.svpc import SvpcTest
from repro.ir import builder as B
from repro.obs.events import (
    CascadeStage,
    DirectionNode,
    EgcdResolved,
    FmBranch,
    FmSample,
    MemoLookup,
    QueryEnd,
    QueryStart,
    event_from_dict,
    event_to_dict,
    read_jsonl,
    write_jsonl,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.render import format_trace
from repro.obs.sinks import (
    NULL_SINK,
    CollectingSink,
    QueryScopedSink,
    StreamingSink,
    merge_event_streams,
)
from repro.system.constraints import ConstraintSystem

NEST = B.nest(("i", 1, 10))


def _collect(analyzer_call):
    """Run one analyzer call with a collecting sink; return its events."""
    sink = CollectingSink()
    analyzer = DependenceAnalyzer(memoizer=Memoizer(), sink=sink)
    analyzer_call(analyzer)
    return sink.events


class TestEventSerialization:
    SAMPLES = [
        QueryStart(op="analyze", ref1="a[i]", ref2="a[i+1]", n_common=1),
        QueryStart(op="directions", ref1="x", ref2="y", n_common=2, query_id=7),
        MemoLookup(table="no_bounds", hit=True, query_id=0),
        EgcdResolved(independent=False, reused=True, elapsed_ns=123),
        CascadeStage(stage="svpc", verdict="dependent", elapsed_ns=5),
        FmBranch(var=1, depth=2, split_floor=3, budget_left=250),
        FmSample(var=0, outcome="integer_picked", value=-4),
        FmSample(var=2, outcome="empty_constant_range"),
        DirectionNode(vector=("<", "*"), action="tested", verdict="independent"),
        QueryEnd(dependent=True, decided_by="svpc", exact=True, elapsed_ns=9),
    ]

    @pytest.mark.parametrize("event", SAMPLES, ids=lambda e: type(e).__name__)
    def test_dict_round_trip(self, event):
        assert event_from_dict(event_to_dict(event)) == event

    def test_jsonl_round_trip(self):
        buffer = io.StringIO()
        count = write_jsonl(self.SAMPLES, buffer)
        assert count == len(self.SAMPLES)
        buffer.seek(0)
        assert list(read_jsonl(buffer)) == self.SAMPLES

    def test_direction_vector_survives_as_tuple(self):
        event = DirectionNode(vector=("<", "=", ">"), action="forced")
        restored = event_from_dict(event_to_dict(event))
        assert restored.vector == ("<", "=", ">")
        assert isinstance(restored.vector, tuple)


class TestSinks:
    def test_null_sink_is_disabled(self):
        assert NULL_SINK.enabled is False

    def test_collecting_sink_groups_by_query(self):
        sink = CollectingSink()
        sink.emit(MemoLookup(table="no_bounds", hit=False, query_id=0))
        sink.emit(MemoLookup(table="no_bounds", hit=True, query_id=1))
        sink.emit(MemoLookup(table="with_bounds", hit=False, query_id=0))
        grouped = sink.by_query()
        assert [e.table for e in grouped[0]] == ["no_bounds", "with_bounds"]
        assert [e.hit for e in grouped[1]] == [True]

    def test_streaming_sink_writes_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with StreamingSink(path) as sink:
            sink.emit(QueryStart(op="analyze", ref1="a", ref2="b", n_common=0))
            sink.emit(
                QueryEnd(
                    dependent=False, decided_by="gcd", exact=True, elapsed_ns=1
                )
            )
        events = list(read_jsonl(path))
        assert sink.emitted == 2
        assert [type(e).__name__ for e in events] == ["QueryStart", "QueryEnd"]

    def test_query_scoped_sink_stamps_id(self):
        inner = CollectingSink()
        scoped = QueryScopedSink(inner, query_id=42)
        scoped.emit(MemoLookup(table="no_bounds", hit=False))
        assert inner.events[0].query_id == 42

    def test_merge_event_streams_renumbers_deterministically(self):
        def stream(ids):
            return [
                MemoLookup(table="no_bounds", hit=False, query_id=q)
                for q in ids
            ]

        merged = merge_event_streams([stream([0, 1, 0]), stream([0, 5])])
        assert [e.query_id for e in merged] == [0, 1, 0, 2, 3]
        again = merge_event_streams([stream([0, 1, 0]), stream([0, 5])])
        assert [e.query_id for e in again] == [e.query_id for e in merged]

    def test_merge_preserves_none_ids(self):
        merged = merge_event_streams(
            [[MemoLookup(table="no_bounds", hit=False, query_id=None)]]
        )
        assert merged[0].query_id is None


class TestMetricsRegistry:
    def test_counters_families_histograms(self):
        reg = MetricsRegistry()
        reg.inc("queries.total")
        reg.inc("queries.total", 2)
        reg.family("tests.decided_by")["svpc"] += 3
        reg.observe("time.cascade.svpc", 100)
        reg.observe("time.cascade.svpc", 300)
        assert reg.get("queries.total") == 3
        assert reg.family("tests.decided_by")["svpc"] == 3
        hist = reg.histogram("time.cascade.svpc")
        assert hist.count == 2 and hist.total == 400
        assert hist.mean == 200.0
        assert (hist.min, hist.max) == (100, 300)

    def test_timer_context_manager_observes(self):
        reg = MetricsRegistry()
        with reg.timer("time.x"):
            pass
        assert reg.histogram("time.x").count == 1

    def test_merge_keeps_every_key(self):
        a = MetricsRegistry()
        a.inc("only.a")
        a.family("fam")["x"] += 1
        a.observe("hist.a", 5)
        b = MetricsRegistry()
        b.inc("only.b", 4)
        b.family("fam")["y"] += 2
        b.observe("hist.a", 7)
        a.merge(b)
        snap = a.counter_snapshot()
        assert snap["scalars"]["only.a"] == 1
        assert snap["scalars"]["only.b"] == 4
        assert snap["families"]["fam"] == {"x": 1, "y": 2}
        merged_hist = a.histogram("hist.a")
        assert merged_hist.count == 2 and merged_hist.total == 12

    def test_counter_snapshot_excludes_histograms(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.observe("time.wall", 999)
        snap = reg.counter_snapshot()
        assert snap == {"scalars": {"c": 1}, "families": {}}

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("scalar", 5)
        reg.family("fam")[("svpc", "dependent")] += 2
        reg.observe("hist", 3)
        restored = MetricsRegistry.from_dict(reg.to_dict())
        assert restored == reg
        assert restored.family("fam")[("svpc", "dependent")] == 2

    def test_histogram_merge_and_round_trip(self):
        a = Histogram()
        a.observe(1)
        a.observe(9)
        b = Histogram.from_dict(a.to_dict())
        assert b == a
        b.merge(a)
        assert b.count == 4 and b.min == 1 and b.max == 9

    def test_render_mentions_counters_and_timers(self):
        reg = MetricsRegistry()
        reg.inc("queries.total", 7)
        reg.observe("time.cascade.svpc", 1000)
        text = reg.render()
        assert "queries.total" in text
        assert "time.cascade.svpc" in text


class TestAnalyzerStatsView:
    def test_stats_is_a_view_over_the_registry(self):
        stats = AnalyzerStats()
        stats.total_queries += 2
        stats.decided_by["svpc"] += 1
        assert stats.registry.get("queries.total") == 2
        assert stats.registry.family("tests.decided_by")["svpc"] == 1

    def test_merged_keeps_unknown_counter_keys(self):
        # The old implementation dropped any decided_by/direction keys
        # outside TEST_ORDER on merge; the registry must keep them all.
        a = AnalyzerStats()
        a.decided_by["svpc"] += 1
        a.decided_by["future_test"] += 5
        b = AnalyzerStats()
        b.decided_by["future_test"] += 2
        b.direction_tests["another"] += 3
        merged = AnalyzerStats.merged([a, b])
        assert merged.decided_by["svpc"] == 1
        assert merged.decided_by["future_test"] == 7
        assert merged.direction_tests["another"] == 3

    def test_counts_order_known_tests_first(self):
        stats = AnalyzerStats()
        stats.decided_by["zzz_extra"] += 1
        stats.decided_by["svpc"] += 1
        keys = list(stats.test_counts())
        assert keys[: len(TEST_ORDER)] == list(TEST_ORDER)
        assert keys[-1] == "zzz_extra"

    def test_observe_stage_ns_lands_in_registry(self):
        stats = AnalyzerStats()
        stats.observe_stage_ns("svpc", 500)
        assert stats.registry.histogram("time.cascade.svpc").count == 1

    def test_stats_pickles(self):
        import pickle

        stats = AnalyzerStats()
        stats.total_queries += 3
        stats.outcomes[("svpc", "dependent")] += 1
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats


class TestGoldenTraces:
    """Each cascade bucket leaves its exact expected event trail."""

    def _kinds(self, events):
        return [type(e).__name__ for e in events]

    def test_constant_screen_trace(self):
        w = B.ref("a", [B.c(1)], write=True)
        r = B.ref("a", [B.c(2)])
        events = _collect(lambda a: a.analyze(w, NEST, r, NEST))
        assert self._kinds(events) == [
            "QueryStart",
            "ConstantScreen",
            "QueryEnd",
        ]
        assert events[1].independent is True
        assert events[2].decided_by == "constant"
        assert events[2].dependent is False

    def test_gcd_independent_trace(self):
        w = B.ref("a", [B.v("i") * 2], write=True)
        r = B.ref("a", [B.v("i") * 2 + 1])
        events = _collect(lambda a: a.analyze(w, NEST, r, NEST))
        assert self._kinds(events) == [
            "QueryStart",
            "MemoLookup",
            "EgcdResolved",
            "QueryEnd",
        ]
        assert events[1].table == "no_bounds" and events[1].hit is False
        assert events[2].independent is True and events[2].reused is False
        assert events[3].decided_by == "gcd"

    def test_svpc_decided_trace(self):
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        events = _collect(lambda a: a.analyze(w, NEST, r, NEST))
        assert self._kinds(events) == [
            "QueryStart",
            "MemoLookup",
            "EgcdResolved",
            "MemoLookup",
            "CascadeStage",
            "QueryEnd",
        ]
        assert events[3].table == "with_bounds" and events[3].hit is False
        assert events[4].stage == "svpc"
        assert events[4].verdict == "dependent"
        assert events[5].decided_by == "svpc"
        assert events[5].exact is True

    def test_memo_reuse_trace(self):
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        sink = CollectingSink()
        analyzer = DependenceAnalyzer(memoizer=Memoizer(), sink=sink)
        analyzer.analyze(w, NEST, r, NEST)
        sink.clear()
        analyzer.analyze(w, NEST, r, NEST)
        kinds = self._kinds(sink.events)
        assert kinds[0] == "QueryStart" and kinds[-1] == "QueryEnd"
        hits = [e for e in sink.events if isinstance(e, MemoLookup) and e.hit]
        assert hits, "second identical query must hit a memo table"
        assert "CascadeStage" not in kinds  # no test re-ran

    def test_direction_trace_has_nodes_and_vector_count(self):
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        events = _collect(lambda a: a.directions(w, NEST, r, NEST))
        start, end = events[0], events[-1]
        assert start.op == "directions"
        assert end.n_vectors == 1
        nodes = [e for e in events if isinstance(e, DirectionNode)]
        assert nodes, "refinement must emit DirectionNode events"
        assert all(e.query_id == start.query_id for e in events)

    def test_fm_branch_trace(self):
        # 2*t0 = t1, t1 = 1: real-feasible, integer-infeasible; needs a
        # genuine branch, so FmBranch events must appear.
        system = ConstraintSystem(("t0", "t1"))
        system.add([2, -1], 0)
        system.add([-2, 1], 0)
        system.add([0, -1], -1)
        system.add([0, 1], 1)
        sink = CollectingSink()
        result = FourierMotzkinTest().run(system, sink)
        assert result.verdict is Verdict.INDEPENDENT
        branches = [e for e in sink.events if isinstance(e, FmBranch)]
        assert branches
        assert all(b.budget_left >= 0 for b in branches)

    def test_fm_sample_trace_on_feasible_system(self):
        system = ConstraintSystem(("t0", "t1"))
        system.add([1, 1], 10)
        system.add([-1, 0], 0)
        system.add([0, -1], 0)
        sink = CollectingSink()
        result = FourierMotzkinTest().run(system, sink)
        assert result.verdict is Verdict.DEPENDENT
        samples = [e for e in sink.events if isinstance(e, FmSample)]
        picked = [e for e in samples if e.outcome == "integer_picked"]
        assert len(picked) == system.n_vars

    def test_stage_timers_populated(self):
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        analyzer = DependenceAnalyzer(memoizer=Memoizer())
        analyzer.analyze(w, NEST, r, NEST)
        hist = analyzer.stats.registry.histogram("time.cascade.svpc")
        assert hist.count == 1 and hist.total > 0

    def test_null_sink_collects_nothing(self):
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        analyzer = DependenceAnalyzer(memoizer=Memoizer())  # default sink
        result = analyzer.analyze(w, NEST, r, NEST)
        assert result.dependent
        assert analyzer.sink is None or not analyzer.sink.enabled

    def test_render_formats_every_event_kind(self):
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        events = _collect(lambda a: a.directions(w, NEST, r, NEST))
        text = format_trace(events)
        assert "query[" in text
        assert "=> dependent" in text
        assert "direction" in text


class TestDeprecationShims:
    def test_decide_still_works_but_warns(self):
        system = ConstraintSystem(("t0",))
        system.add([1], 5)
        system.add([-1], 0)
        with pytest.warns(DeprecationWarning, match="decide.. is deprecated"):
            result = SvpcTest().decide(system)
        assert result.verdict is Verdict.DEPENDENT

    def test_run_does_not_warn(self):
        system = ConstraintSystem(("t0",))
        system.add([1], 5)
        system.add([-1], 0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            SvpcTest().run(system)

    def test_internal_paths_never_hit_the_shim(self):
        # pyproject turns DeprecationWarning raised from inside repro.*
        # into errors; a full traced analysis must stay clean.
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            analyzer = DependenceAnalyzer(
                memoizer=Memoizer(), sink=CollectingSink()
            )
            analyzer.analyze(w, NEST, r, NEST)
            analyzer.directions(w, NEST, r, NEST)


class TestMetricsThreadSafety:
    """The registry is shared across serving threads: mutation is locked."""

    def test_concurrent_increments_are_exact(self):
        import threading

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        n_threads, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                registry.inc("hits")
                registry.inc_family("decided_by", "svpc")
                registry.observe("latency", 1)

        threads = [threading.Thread(target=hammer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert registry.get("hits") == total
        assert registry.family("decided_by")["svpc"] == total
        assert registry.histogram("latency").count == total

    def test_concurrent_merge_and_snapshot(self):
        import threading

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        other = MetricsRegistry()
        other.inc("x", 3)
        other.inc_family("f", "k", 2)
        stop = threading.Event()
        errors: list[BaseException] = []

        def merger():
            try:
                for _ in range(500):
                    registry.merge(other)
            except BaseException as err:  # pragma: no cover
                errors.append(err)
            finally:
                stop.set()

        def snapshotter():
            try:
                while not stop.is_set():
                    registry.to_dict()
                    registry.counter_snapshot("f")
            except BaseException as err:  # pragma: no cover
                errors.append(err)

        threads = [
            threading.Thread(target=merger),
            threading.Thread(target=snapshotter),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert registry.get("x") == 1500
        assert registry.family("f")["k"] == 1000

    def test_registry_pickles_across_processes(self):
        """Shard workers ship registries back through pickle: the lock
        must be dropped on the way out and rebuilt on the way in."""
        import pickle
        import threading

        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.inc("hits", 7)
        registry.inc_family("decided_by", "gcd", 2)
        registry.observe("latency", 5)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.get("hits") == 7
        assert clone.family("decided_by")["gcd"] == 2
        assert clone.histogram("latency").count == 1
        # The rebuilt lock is a real lock: mutation still works.
        clone.inc("hits")
        assert clone.get("hits") == 8
        assert isinstance(clone._lock, type(threading.RLock()))
