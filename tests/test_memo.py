"""Tests for the memoization tables (paper section 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer, MemoTable, paper_hash
from repro.ir import builder as B


class TestPaperHash:
    def test_formula(self):
        # h(z) = size(z) + sum 2^i z_i
        assert paper_hash((3,), 10**9) == 1 + 3
        assert paper_hash((1, 2), 10**9) == 2 + 1 + 4
        assert paper_hash((), 10**9) == 0

    def test_asymmetry(self):
        # Chosen so symmetrical references do not collide.
        assert paper_hash((1, 2), 4096) != paper_hash((2, 1), 4096)

    @given(st.lists(st.integers(-100, 100), max_size=20), st.integers(1, 8192))
    def test_in_range(self, vec, size):
        assert 0 <= paper_hash(tuple(vec), size) < size


class TestMemoTable:
    def test_miss_then_hit(self):
        table = MemoTable(size=64)
        key = (1, 2, 3)
        hit, _ = table.lookup(key)
        assert not hit
        table.insert(key, "value")
        hit, value = table.lookup(key)
        assert hit and value == "value"
        assert table.stats.queries == 2
        assert table.stats.hits == 1
        assert table.stats.inserts == 1

    def test_collisions_resolved_by_full_key(self):
        table = MemoTable(size=1)  # everything collides
        table.insert((1,), "a")
        table.insert((2,), "b")
        assert table.lookup((1,)) == (True, "a")
        assert table.lookup((2,)) == (True, "b")
        assert len(table) == 2

    def test_insert_overwrites(self):
        table = MemoTable(size=8)
        table.insert((1,), "a")
        table.insert((1,), "b")
        assert table.lookup((1,))[1] == "b"
        assert table.stats.inserts == 1  # same unique case

    def test_unique_fraction(self):
        table = MemoTable(size=8)
        for _ in range(4):
            hit, _ = table.lookup((1,))
            if not hit:
                table.insert((1,), True)
        assert table.stats.unique == 1
        assert table.stats.unique_fraction == 0.25


class TestAnalyzerMemoization:
    def _run(self, analyzer, n=10):
        nest = B.nest(("i", 1, n))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        return analyzer.analyze(w, nest, r, nest)

    def test_repeat_query_served_from_memo(self):
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        first = self._run(analyzer)
        second = self._run(analyzer)
        assert not first.from_memo
        assert second.from_memo
        assert first.dependent == second.dependent
        assert second.decided_by == first.decided_by
        # only the first query ran a test
        assert analyzer.stats.decided_by["svpc"] == 1

    def test_alpha_renaming_hits(self):
        """a[i+1] vs a[i] in loop i == a[j+1] vs a[j] in loop j."""
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        nest_i = B.nest(("i", 1, 10))
        nest_j = B.nest(("j", 1, 10))
        analyzer.analyze(
            B.ref("a", [B.v("i") + 1], write=True), nest_i,
            B.ref("a", [B.v("i")]), nest_i,
        )
        result = analyzer.analyze(
            B.ref("a", [B.v("j") + 1], write=True), nest_j,
            B.ref("a", [B.v("j")]), nest_j,
        )
        assert result.from_memo

    def test_paper_improved_scheme_unused_loop_merge(self):
        """The paper's (a)/(b) example: two doubly-nested loops whose
        outer/inner index is unused collapse to the same single-loop case."""
        memo = Memoizer(improved=True)
        analyzer = DependenceAnalyzer(memoizer=memo, eliminate_unused=True)
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        # (a) a[i+10] = a[i] inside i, j loops
        analyzer.analyze(
            B.ref("a", [B.v("i") + 10], write=True), nest,
            B.ref("a", [B.v("i")]), nest,
        )
        # (b) a[j+10] = a[j] inside the same loops
        result_b = analyzer.analyze(
            B.ref("a", [B.v("j") + 10], write=True), nest,
            B.ref("a", [B.v("j")]), nest,
        )
        assert result_b.from_memo  # improved scheme merges them

    def test_simple_scheme_does_not_merge(self):
        memo = Memoizer(improved=False)
        analyzer = DependenceAnalyzer(memoizer=memo, eliminate_unused=False)
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        analyzer.analyze(
            B.ref("a", [B.v("i") + 10], write=True), nest,
            B.ref("a", [B.v("i")]), nest,
        )
        result_b = analyzer.analyze(
            B.ref("a", [B.v("j") + 10], write=True), nest,
            B.ref("a", [B.v("j")]), nest,
        )
        assert not result_b.from_memo

    def test_different_bounds_share_gcd_but_not_verdict(self):
        """Matching subscripts with different bounds reuse only the
        no-bounds (GCD) table."""
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        self._run(analyzer, n=10)
        self._run(analyzer, n=20)
        assert memo.no_bounds.stats.hits == 1
        assert memo.with_bounds.stats.hits == 0
        # And the second answer is still correct.
        assert analyzer.stats.decided_by["svpc"] == 2

    @given(
        st.lists(
            st.tuples(
                st.integers(-2, 2),
                st.integers(-5, 5),
                st.integers(1, 6),
            ),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_memoized_equals_unmemoized(self, cases):
        """Memoization never changes any verdict."""
        memoized = DependenceAnalyzer(memoizer=Memoizer())
        plain = DependenceAnalyzer()
        for a, c, n in cases + cases:  # force repeats
            nest = B.nest(("i", 1, n))
            w = B.ref("a", [B.v("i") * a + c], write=True)
            r = B.ref("a", [B.v("i")])
            r_memo = memoized.analyze(w, nest, r, nest)
            r_plain = plain.analyze(w, nest, r, nest)
            assert r_memo.dependent == r_plain.dependent
