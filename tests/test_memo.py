"""Tests for the memoization tables (paper section 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer, MemoTable, paper_hash
from repro.ir import builder as B


class TestPaperHash:
    def test_formula(self):
        # h(z) = size(z) + sum 2^i z_i
        assert paper_hash((3,), 10**9) == 1 + 3
        assert paper_hash((1, 2), 10**9) == 2 + 1 + 4
        assert paper_hash((), 10**9) == 0

    def test_asymmetry(self):
        # Chosen so symmetrical references do not collide.
        assert paper_hash((1, 2), 4096) != paper_hash((2, 1), 4096)

    @given(st.lists(st.integers(-100, 100), max_size=20), st.integers(1, 8192))
    def test_in_range(self, vec, size):
        assert 0 <= paper_hash(tuple(vec), size) < size


class TestMemoTable:
    def test_miss_then_hit(self):
        table = MemoTable(size=64)
        key = (1, 2, 3)
        hit, _ = table.lookup(key)
        assert not hit
        table.insert(key, "value")
        hit, value = table.lookup(key)
        assert hit and value == "value"
        assert table.stats.queries == 2
        assert table.stats.hits == 1
        assert table.stats.inserts == 1

    def test_collisions_resolved_by_full_key(self):
        table = MemoTable(size=1)  # everything collides
        table.insert((1,), "a")
        table.insert((2,), "b")
        assert table.lookup((1,)) == (True, "a")
        assert table.lookup((2,)) == (True, "b")
        assert len(table) == 2

    def test_insert_overwrites(self):
        table = MemoTable(size=8)
        table.insert((1,), "a")
        table.insert((1,), "b")
        assert table.lookup((1,))[1] == "b"
        assert table.stats.inserts == 1  # same unique case

    def test_unique_fraction(self):
        table = MemoTable(size=8)
        for _ in range(4):
            hit, _ = table.lookup((1,))
            if not hit:
                table.insert((1,), True)
        assert table.stats.unique == 1
        assert table.stats.unique_fraction == 0.25


class TestResize:
    def test_grows_past_load_factor(self):
        table = MemoTable(size=4)
        for k in range(16):
            table.insert((k,), k)
        assert table.size > 4
        assert table.load_factor <= 0.75
        assert len(table) == 16
        for k in range(16):
            assert table.lookup((k,)) == (True, k)

    def test_growth_doubles(self):
        table = MemoTable(size=4)
        seen = {table.size}
        for k in range(40):
            table.insert((k,), k)
            seen.add(table.size)
        assert seen == {4, 8, 16, 32, 64}

    def test_fixed_size_preserves_paper_scheme(self):
        table = MemoTable(size=4, fixed_size=True)
        for k in range(100):
            table.insert((k,), k)
        assert table.size == 4  # never grows
        assert len(table) == 100
        for k in range(100):
            assert table.lookup((k,)) == (True, k)

    def test_resize_preserves_unique_insert_count(self):
        table = MemoTable(size=2)
        for k in range(10):
            table.insert((k,), k)
        assert table.stats.inserts == 10

    def test_update_triggers_growth_without_insert_count(self):
        table = MemoTable(size=2)
        for k in range(10):
            table.update((k,), k)
        assert table.stats.inserts == 0
        assert table.size > 2
        assert len(table) == 10

    def test_paper_memoizer_is_fixed_4096(self):
        memo = Memoizer.paper()
        assert memo.no_bounds.fixed_size
        assert memo.with_bounds.fixed_size
        assert memo.no_bounds.size == 4096

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_resizable_agrees_with_fixed(self, key):
        """Growth never loses or corrupts an entry."""
        growing = MemoTable(size=1)
        fixed = MemoTable(size=1, fixed_size=True)
        for shift in range(20):
            k = tuple(z + shift for z in key)
            growing.insert(k, shift)
            fixed.insert(k, shift)
        for shift in range(20):
            k = tuple(z + shift for z in key)
            assert growing.lookup(k) == fixed.lookup(k)


class TestSymmetricCanonicalization:
    """The paper's further optimization: a problem and its
    reference-swapped twin (a[i] vs a[i-1] and a[i-1] vs a[i]) occupy a
    single memo slot, with distances re-oriented on retrieval."""

    def _pair(self):
        nest = B.nest(("i", 1, 10))
        fwd = B.ref("a", [B.v("i")], write=True)
        back = B.ref("a", [B.v("i") - 1])
        return fwd, back, nest

    def test_swapped_twins_share_one_slot(self):
        fwd, back, nest = self._pair()
        memo = Memoizer(symmetry=True)
        analyzer = DependenceAnalyzer(memoizer=memo)
        first = analyzer.analyze(fwd, nest, back, nest)
        second = analyzer.analyze(back, nest, fwd, nest)
        assert not first.from_memo
        assert second.from_memo
        assert len(memo.with_bounds) == 1
        assert memo.with_bounds.stats.hits == 1
        # only one actual test ran for both orientations
        assert sum(analyzer.stats.decided_by.values()) == 1

    def test_distances_reverse_on_swapped_retrieval(self):
        fwd, back, nest = self._pair()
        analyzer = DependenceAnalyzer(memoizer=Memoizer(symmetry=True))
        first = analyzer.analyze(fwd, nest, back, nest)
        second = analyzer.analyze(back, nest, fwd, nest)
        # a[i] vs a[i-1]: i = i' - 1, so i' - i == 1; swapped == -1.
        assert first.dependent and second.dependent
        assert first.distance == (1,)
        assert second.distance == (-1,)

    def test_direction_vectors_consistent_across_orientations(self):
        fwd, back, nest = self._pair()
        analyzer = DependenceAnalyzer(memoizer=Memoizer(symmetry=True))
        forward = analyzer.directions(fwd, nest, back, nest)
        backward = analyzer.directions(back, nest, fwd, nest)
        assert forward.vectors == frozenset({("<",)})
        assert backward.vectors == frozenset({(">",)})

    def test_without_symmetry_twins_use_two_slots(self):
        fwd, back, nest = self._pair()
        memo = Memoizer()  # symmetry off (the published default)
        analyzer = DependenceAnalyzer(memoizer=memo)
        analyzer.analyze(fwd, nest, back, nest)
        second = analyzer.analyze(back, nest, fwd, nest)
        assert not second.from_memo
        assert len(memo.with_bounds) == 2


class TestAnalyzerMemoization:
    def _run(self, analyzer, n=10):
        nest = B.nest(("i", 1, n))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        return analyzer.analyze(w, nest, r, nest)

    def test_repeat_query_served_from_memo(self):
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        first = self._run(analyzer)
        second = self._run(analyzer)
        assert not first.from_memo
        assert second.from_memo
        assert first.dependent == second.dependent
        assert second.decided_by == first.decided_by
        # only the first query ran a test
        assert analyzer.stats.decided_by["svpc"] == 1

    def test_alpha_renaming_hits(self):
        """a[i+1] vs a[i] in loop i == a[j+1] vs a[j] in loop j."""
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        nest_i = B.nest(("i", 1, 10))
        nest_j = B.nest(("j", 1, 10))
        analyzer.analyze(
            B.ref("a", [B.v("i") + 1], write=True), nest_i,
            B.ref("a", [B.v("i")]), nest_i,
        )
        result = analyzer.analyze(
            B.ref("a", [B.v("j") + 1], write=True), nest_j,
            B.ref("a", [B.v("j")]), nest_j,
        )
        assert result.from_memo

    def test_paper_improved_scheme_unused_loop_merge(self):
        """The paper's (a)/(b) example: two doubly-nested loops whose
        outer/inner index is unused collapse to the same single-loop case."""
        memo = Memoizer(improved=True)
        analyzer = DependenceAnalyzer(memoizer=memo, eliminate_unused=True)
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        # (a) a[i+10] = a[i] inside i, j loops
        analyzer.analyze(
            B.ref("a", [B.v("i") + 10], write=True), nest,
            B.ref("a", [B.v("i")]), nest,
        )
        # (b) a[j+10] = a[j] inside the same loops
        result_b = analyzer.analyze(
            B.ref("a", [B.v("j") + 10], write=True), nest,
            B.ref("a", [B.v("j")]), nest,
        )
        assert result_b.from_memo  # improved scheme merges them

    def test_simple_scheme_does_not_merge(self):
        memo = Memoizer(improved=False)
        analyzer = DependenceAnalyzer(memoizer=memo, eliminate_unused=False)
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        analyzer.analyze(
            B.ref("a", [B.v("i") + 10], write=True), nest,
            B.ref("a", [B.v("i")]), nest,
        )
        result_b = analyzer.analyze(
            B.ref("a", [B.v("j") + 10], write=True), nest,
            B.ref("a", [B.v("j")]), nest,
        )
        assert not result_b.from_memo

    def test_different_bounds_share_gcd_but_not_verdict(self):
        """Matching subscripts with different bounds reuse only the
        no-bounds (GCD) table."""
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        self._run(analyzer, n=10)
        self._run(analyzer, n=20)
        assert memo.no_bounds.stats.hits == 1
        assert memo.with_bounds.stats.hits == 0
        # And the second answer is still correct.
        assert analyzer.stats.decided_by["svpc"] == 2

    @given(
        st.lists(
            st.tuples(
                st.integers(-2, 2),
                st.integers(-5, 5),
                st.integers(1, 6),
            ),
            min_size=2,
            max_size=12,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_memoized_equals_unmemoized(self, cases):
        """Memoization never changes any verdict."""
        memoized = DependenceAnalyzer(memoizer=Memoizer())
        plain = DependenceAnalyzer()
        for a, c, n in cases + cases:  # force repeats
            nest = B.nest(("i", 1, n))
            w = B.ref("a", [B.v("i") * a + c], write=True)
            r = B.ref("a", [B.v("i")])
            r_memo = memoized.analyze(w, nest, r, nest)
            r_plain = plain.analyze(w, nest, r, nest)
            assert r_memo.dependent == r_plain.dependent
