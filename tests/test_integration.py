"""End-to-end integration: realistic kernels through the full pipeline.

Source text -> parser -> prepass optimizer -> IR -> exact dependence
analysis -> parallelism / transformation verdicts, checked against the
textbook answers for each kernel.
"""

from itertools import permutations

from repro.core.analyzer import DependenceAnalyzer
from repro.core.kinds import DependenceKind, classify_pair
from repro.core.memo import Memoizer
from repro.core.parallel import analyze_parallelism
from repro.core.transforms import (
    gather_dependences,
    interchange_legal,
    permutation_legal,
)
from repro.ir.program import reference_pairs
from repro.opt import compile_source


def _parallel_map(source: str) -> dict[str, bool]:
    program = compile_source(source).program
    return {
        f"{r.loop.var}@{r.level}": r.parallel
        for r in analyze_parallelism(program)
    }


class TestMatmul:
    SOURCE = """
for i = 1 to 50 do
  for j = 1 to 50 do
    for k = 1 to 50 do
      c[i][j] = c[i][j] + a[i][k] * b[k][j]
    end
  end
end
"""

    def test_reduction_loop_carries(self):
        flags = _parallel_map(self.SOURCE)
        assert flags["i@0"] is True
        assert flags["j@1"] is True
        assert flags["k@2"] is False  # the reduction

    def test_fully_permutable(self):
        edges = gather_dependences(compile_source(self.SOURCE).program)
        for perm in permutations(range(3)):
            assert permutation_legal(edges, perm)


class TestLuDecompositionStyle:
    # The triangular bounds matter: with i, j > k the pivot row/column
    # reads a[i][k], a[k][j] never alias the a[i][j] updates of the
    # same k iteration, so the classic result holds — the elimination
    # loop k carries, the update loops i and j parallelize.
    SOURCE = """
for k = 1 to 30 do
  for i = k + 1 to 30 do
    for j = k + 1 to 30 do
      a[i][j] = a[i][j] - a[i][k] * a[k][j]
    end
  end
end
"""

    def test_outer_loop_serial(self):
        flags = _parallel_map(self.SOURCE)
        assert flags["k@0"] is False
        assert flags["i@1"] is True
        assert flags["j@2"] is True

    def test_rectangular_variant_loses_parallelism(self):
        """Without the triangular bounds the i loop truly carries
        (write a[i][j] at i = k is read as the pivot row a[k][j] by
        other i iterations of the same k) — exactness distinguishes
        the two shapes."""
        flags = _parallel_map(
            "for k = 2 to 30 do\n"
            "  for i = 2 to 30 do\n"
            "    for j = 2 to 30 do\n"
            "      a[i][j] = a[i][j] - a[i][k] * a[k][j]\n"
            "    end\n"
            "  end\n"
            "end"
        )
        assert flags["k@0"] is False
        assert flags["i@1"] is False


class TestTranspose:
    SOURCE = """
for i = 1 to 40 do
  for j = 1 to 40 do
    b[i][j] = a[j][i]
  end
end
"""

    def test_fully_parallel(self):
        flags = _parallel_map(self.SOURCE)
        assert all(flags.values())


class TestInPlaceShiftFamily:
    def test_forward_shift_serial(self):
        flags = _parallel_map(
            "for i = 2 to 100 do\n  a[i] = a[i - 1]\nend"
        )
        assert flags["i@0"] is False

    def test_far_shift_within_half(self):
        # a[i] = a[i+50] with i in 1..50: reads 51..100, writes 1..50.
        flags = _parallel_map(
            "for i = 1 to 50 do\n  a[i] = a[i + 50]\nend"
        )
        assert flags["i@0"] is True

    def test_stride_two_halves(self):
        # even writes, odd reads: never conflict
        flags = _parallel_map(
            "for i = 1 to 50 do\n  a[2 * i] = a[2 * i + 1]\nend"
        )
        assert flags["i@0"] is True


class TestConvolutionStyle:
    SOURCE = """
read(n)
for i = 3 to n do
  out[i] = sig[i] + sig[i - 1] + sig[i - 2]
end
"""

    def test_reads_only_kernel_parallel(self):
        flags = _parallel_map(self.SOURCE)
        assert flags["i@0"] is True

    def test_dependence_kinds(self):
        program = compile_source(self.SOURCE).program
        analyzer = DependenceAnalyzer()
        kinds = set()
        for site1, site2 in reference_pairs(program):
            for edge in classify_pair(site1, site2, analyzer):
                kinds.add(edge.kind)
        assert DependenceKind.FLOW not in kinds  # out/sig never alias


class TestHistogramStyle:
    def test_indirect_rejected_cleanly(self):
        # histogram: h[b[i]] += 1 — not affine; permissive mode skips it
        result = compile_source(
            "for i = 1 to 100 do\n  h[b[i]] = h[b[i]] + 1\nend",
            strict=False,
        )
        assert result.program.statements == []
        assert result.skipped


class TestWholePipelineMemoized:
    def test_repeated_kernels_hit_memo(self):
        source = "\n".join(
            f"for i = 2 to 100 do\n  a{k}[i] = a{k}[i - 1]\nend"
            for k in range(8)
        )
        program = compile_source(source).program
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        for site1, site2 in reference_pairs(program):
            analyzer.analyze_sites(site1, site2)
        # 8 identical problems on different arrays: 1 unique
        assert memo.with_bounds.stats.unique == 1
        assert memo.with_bounds.stats.hits == 7

    def test_interchange_on_optimized_source(self):
        # strided source loop; legality judged after normalization
        source = (
            "for i = 2 to 20 step 2 do\n"
            "  for j = 1 to 20 do\n"
            "    a[i][j] = a[i - 2][j]\n"
            "  end\n"
            "end"
        )
        program = compile_source(source).program
        edges = gather_dependences(program)
        assert edges  # the carried flow dependence survives normalization
        assert interchange_legal(edges, 0, 2)
