"""Tests for the dimension-by-dimension direction optimization (§6)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import DependenceAnalyzer
from repro.core.separable import is_separable
from repro.ir import builder as B
from repro.oracle.enumerate import oracle_direction_vectors
from repro.system.depsystem import build_problem

coef = st.integers(min_value=-2, max_value=2)
shift = st.integers(min_value=-4, max_value=4)


def _problem(sub1, sub2, n=10):
    nest = B.nest(("i", 1, n), ("j", 1, n))
    return build_problem(
        B.ref("a", sub1, write=True), nest, B.ref("a", sub2), nest
    )


class TestSeparability:
    def test_classic_separable(self):
        problem = _problem(
            [B.v("i") + 1, B.v("j")], [B.v("i"), B.v("j")]
        )
        assert is_separable(problem)

    def test_coupled_not_separable(self):
        # one equation touches both levels
        problem = _problem([B.v("i") + B.v("j")], [B.v("i")])
        assert not is_separable(problem)

    def test_swapped_indices_not_separable(self):
        # a[i][j] vs a[j][i]: each equation touches two levels
        problem = _problem(
            [B.v("i"), B.v("j")], [B.v("j"), B.v("i")]
        )
        assert not is_separable(problem)

    def test_level_touched_twice_not_separable(self):
        problem = _problem(
            [B.v("i"), B.v("i")], [B.v("i"), B.v("i") + 1]
        )
        assert not is_separable(problem)

    def test_trapezoid_not_separable(self):
        nest = B.nest(("i", 1, 10), ("j", 1, B.v("i")))
        problem = build_problem(
            B.ref("a", [B.v("i"), B.v("j")], write=True),
            nest,
            B.ref("a", [B.v("i"), B.v("j")]),
            nest,
        )
        assert not is_separable(problem)

    def test_symbolic_not_separable(self):
        nest = B.nest(("i", 1, 10))
        problem = build_problem(
            B.ref("a", [B.v("i") + B.v("n")], write=True),
            nest,
            B.ref("a", [B.v("i")]),
            nest,
        )
        assert not is_separable(problem)


class TestExactness:
    def test_paper_example(self):
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        w = B.ref("a", [B.v("i") + 1, B.v("j")], write=True)
        r = B.ref("a", [B.v("i"), B.v("j")])
        result = DependenceAnalyzer().directions(
            w, nest, r, nest, dimension_by_dimension=True
        )
        truth = oracle_direction_vectors(w, nest, r, nest)
        assert result.elementary_vectors() == truth == {("<", "=")}

    @given(coef, shift, coef, shift, st.integers(1, 6))
    @settings(max_examples=200, deadline=None)
    def test_matches_hierarchical_when_separable(self, a, c1, b, c2, n):
        nest = B.nest(("i", 1, n), ("j", 1, n))
        w = B.ref("a", [B.v("i") * a + c1, B.v("j") * b + c2], write=True)
        r = B.ref("a", [B.v("i"), B.v("j")])
        problem = build_problem(w, nest, r, nest)
        if not is_separable(problem):
            return
        dim = DependenceAnalyzer().directions(
            w, nest, r, nest, prune_unused=False, prune_distance=False,
            dimension_by_dimension=True,
        )
        hier = DependenceAnalyzer().directions(
            w, nest, r, nest, prune_unused=False, prune_distance=False,
        )
        truth = oracle_direction_vectors(w, nest, r, nest)
        assert dim.elementary_vectors() == truth
        assert hier.elementary_vectors() == truth

    def test_unconstrained_level_single_iteration(self):
        # j unconstrained with a single iteration: only '=' feasible.
        nest = B.nest(("i", 1, 10), ("j", 1, 1))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        result = DependenceAnalyzer(eliminate_unused=False).directions(
            w, nest, r, nest,
            prune_unused=False, prune_distance=False,
            dimension_by_dimension=True,
        )
        truth = oracle_direction_vectors(w, nest, r, nest)
        assert result.elementary_vectors() == truth

    def test_cost_linear_not_exponential(self):
        """3 levels, every direction feasible: 9 tests, not 40."""
        nest = B.nest(("i", 1, 9), ("j", 1, 9), ("k", 1, 9))
        w = B.ref("a", [B.v("i"), B.v("j"), B.v("k")], write=True)
        r = B.ref("a", [B.v("i") * 0 + 5, B.v("j") * 0 + 5, B.v("k") * 0 + 5])
        # constant vs var per dim: each dim equation i = 5 etc -- one
        # level per equation, separable; all three dirs feasible per dim.
        dim = DependenceAnalyzer().directions(
            w, nest, r, nest, prune_unused=False, prune_distance=False,
            dimension_by_dimension=True,
        )
        hier = DependenceAnalyzer().directions(
            w, nest, r, nest, prune_unused=False, prune_distance=False,
        )
        assert dim.elementary_vectors() == hier.elementary_vectors()
        assert dim.tests_performed <= 9
        assert hier.tests_performed > dim.tests_performed
