"""Tests for the repro.api facade: sessions, reports, explain, batches.

Also home of the sharded-vs-serial metrics determinism gate: the
counter part of the registry must be bit-identical whatever the shard
count (histograms carry wall times and are excluded by design).
"""

import pytest

from repro import (
    AnalysisConfig,
    AnalysisSession,
    CollectingSink,
    DependenceReport,
)
from repro.core.engine import analyze_batch, queries_from_suite
from repro.ir import builder as B
from repro.obs.events import DirectionNode, QueryEnd, QueryStart
from repro.perfect import load_suite

NEST = B.nest(("i", 1, 10))


def _shift_pair():
    return (
        B.ref("a", [B.v("i") + 1], write=True),
        B.ref("a", [B.v("i")]),
    )


def _program():
    from repro.ir.program import Program, Statement

    w, r = _shift_pair()
    return Program("p", [Statement(nest=NEST, write=w, reads=(r,))])


class TestSession:
    def test_analyze_returns_unified_report(self):
        w, r = _shift_pair()
        session = AnalysisSession()
        report = session.analyze(w, NEST, r, NEST, want_directions=True)
        assert isinstance(report, DependenceReport)
        assert report.dependent
        assert report.decided_by == "svpc"
        assert report.exact
        assert ("<",) in report.directions
        assert report.elementary_directions() == [("<",)]

    def test_analyze_without_directions(self):
        w, r = _shift_pair()
        report = AnalysisSession().analyze(w, NEST, r, NEST)
        assert report.dependent
        assert report.directions is None
        assert report.elementary_directions() == []

    def test_directions_only_report(self):
        w, r = _shift_pair()
        report = AnalysisSession().directions(w, NEST, r, NEST)
        assert report.dependent
        assert report.decided_by == "directions"
        assert report.n_common == 1

    def test_independent_report(self):
        w = B.ref("a", [B.v("i") * 2], write=True)
        r = B.ref("a", [B.v("i") * 2 + 1])
        report = AnalysisSession().analyze(w, NEST, r, NEST, want_directions=True)
        assert not report.dependent
        assert report.decided_by == "gcd"
        # The documented contract (matching the batch engine):
        # requested directions on an independent pair are empty, and
        # None only when not requested.
        assert report.directions == frozenset()
        assert report.n_common == 1
        plain = AnalysisSession().analyze(w, NEST, r, NEST)
        assert plain.directions is None

    def test_memo_persists_across_queries(self):
        w, r = _shift_pair()
        session = AnalysisSession()
        first = session.analyze(w, NEST, r, NEST)
        second = session.analyze(w, NEST, r, NEST)
        assert not first.from_memo
        assert second.from_memo

    def test_memo_disabled_by_config(self):
        w, r = _shift_pair()
        session = AnalysisSession(AnalysisConfig(memo=False))
        assert session.memoizer is None
        session.analyze(w, NEST, r, NEST)
        assert not session.analyze(w, NEST, r, NEST).from_memo

    def test_registry_accumulates(self):
        w, r = _shift_pair()
        session = AnalysisSession()
        session.analyze(w, NEST, r, NEST)
        session.analyze(w, NEST, r, NEST)
        assert session.registry.get("queries.total") == 2
        assert session.stats.total_queries == 2

    def test_wildcard_expansion(self):
        report = DependenceReport(
            ref1="a",
            ref2="b",
            dependent=True,
            decided_by="directions",
            directions=frozenset({("*",)}),
        )
        assert report.elementary_directions() == [("<",), ("=",), (">",)]


class TestExplain:
    def test_explain_captures_full_trace(self):
        w, r = _shift_pair()
        session = AnalysisSession()
        explained = session.explain(w, NEST, r, NEST)
        assert explained.report.dependent
        kinds = [type(e).__name__ for e in explained.events]
        assert kinds.count("QueryStart") == 2  # analyze + directions
        assert kinds.count("QueryEnd") == 2
        assert any(isinstance(e, DirectionNode) for e in explained.events)
        text = explained.render()
        assert "query[0] analyze" in text
        assert "=> dependent" in text

    def test_explain_restores_configured_sink(self):
        w, r = _shift_pair()
        outer = CollectingSink()
        session = AnalysisSession(AnalysisConfig(sink=outer))
        session.explain(w, NEST, r, NEST, want_directions=False)
        assert session.analyzer.sink is outer
        # forwarded: the outer sink saw the explain events too
        assert any(isinstance(e, QueryEnd) for e in outer.events)

    def test_session_sink_receives_events(self):
        w, r = _shift_pair()
        sink = CollectingSink()
        session = AnalysisSession(AnalysisConfig(sink=sink))
        session.analyze(w, NEST, r, NEST)
        starts = [e for e in sink.events if isinstance(e, QueryStart)]
        assert len(starts) == 1 and starts[0].op == "analyze"


class TestAnalyzeProgram:
    def test_program_report_shape(self):
        session = AnalysisSession(AnalysisConfig(jobs=1))
        report = session.analyze_program(_program())
        assert len(report) == 1
        (pair,) = list(report)
        assert pair.dependent and pair.directions
        assert report.dependent_pairs == [pair]
        assert report.summary["queries"] == 1

    def test_batch_folds_back_into_session(self):
        session = AnalysisSession(AnalysisConfig(jobs=1))
        session.analyze_program(_program())
        assert session.stats.total_queries >= 1
        # the batch's memo entries are now the session's: a direct
        # repeat of the same pair hits the memo immediately.
        w, r = _shift_pair()
        assert session.analyze(w, NEST, r, NEST).from_memo


class TestShardedMetricsDeterminism:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_counter_snapshot_reproducible_per_sharding(self, jobs):
        # Memo hit counts legitimately differ *between* shard counts
        # (each worker owns its table), but for a fixed sharding the
        # merged counters must be bit-identical run to run.
        queries = queries_from_suite(
            load_suite(include_symbolic=False, scale=0.1)
        )
        first = analyze_batch(queries, jobs=jobs)
        second = analyze_batch(queries, jobs=jobs)
        assert (
            first.stats.registry.counter_snapshot()
            == second.stats.registry.counter_snapshot()
        )

    def test_memo_independent_counters_match_across_shardings(self):
        queries = queries_from_suite(
            load_suite(include_symbolic=False, scale=0.1)
        )
        serial = analyze_batch(queries, jobs=1).stats
        sharded = analyze_batch(queries, jobs=3).stats
        assert serial.total_queries == sharded.total_queries
        assert serial.constant_cases == sharded.constant_cases
        assert (
            serial.memo_queries_no_bounds == sharded.memo_queries_no_bounds
        )

    def test_merged_trace_identical_across_shardings(self):
        queries = queries_from_suite(
            load_suite(include_symbolic=False, scale=0.05)
        )
        runs = []
        for jobs in (1, 2):
            sink = CollectingSink()
            analyze_batch(queries, jobs=jobs, sink=sink)
            runs.append(
                [
                    (type(e).__name__, e.query_id)
                    for e in sink.events
                    if isinstance(e, (QueryStart, QueryEnd))
                ]
            )
        assert runs[0] == runs[1]

    def test_trace_query_ids_are_dense_and_unique(self):
        queries = queries_from_suite(
            load_suite(include_symbolic=False, scale=0.05)
        )
        sink = CollectingSink()
        analyze_batch(queries, jobs=2, sink=sink)
        starts = [e for e in sink.events if isinstance(e, QueryStart)]
        ids = [e.query_id for e in starts]
        assert len(ids) == len(set(ids))
        assert sorted(ids) == list(range(len(ids)))
