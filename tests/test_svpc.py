"""Tests for the Single Variable Per Constraint test."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deptests.base import Verdict
from repro.deptests.svpc import SvpcTest
from repro.oracle.enumerate import solve_system
from repro.system.constraints import ConstraintSystem

small = st.integers(min_value=-12, max_value=12)


def _system(*rows):
    n = len(rows[0][0])
    system = ConstraintSystem(tuple(f"t{i}" for i in range(n)))
    for coeffs, bound in rows:
        system.add(coeffs, bound)
    return system


class TestApplicability:
    def test_single_variable_ok(self):
        system = _system(([1, 0], 5), ([0, -1], 2))
        assert SvpcTest().applicable(system)

    def test_multi_variable_rejected(self):
        system = _system(([1, 1], 5))
        assert not SvpcTest().applicable(system)
        result = SvpcTest().run(system)
        assert result.verdict is Verdict.NOT_APPLICABLE

    def test_empty_system_applicable(self):
        system = ConstraintSystem(("t0",))
        assert SvpcTest().applicable(system)
        assert SvpcTest().run(system).verdict is Verdict.DEPENDENT


class TestDecisions:
    def test_paper_worked_example(self):
        # Section 3.2: 1<=t1<=10, 1<=t2<=10, t2+9<=10 (t2<=1), t1-10>=1
        # (t1>=11): lower bound of t1 exceeds its upper bound.
        system = _system(
            ([1, 0], 10),
            ([-1, 0], -1),
            ([0, 1], 10),
            ([0, -1], -1),
            ([0, 1], 1),
            ([-1, 0], -11),
        )
        assert SvpcTest().run(system).verdict is Verdict.INDEPENDENT

    def test_dependent_with_witness(self):
        system = _system(([1, 0], 5), ([-1, 0], -3), ([0, 1], 0))
        result = SvpcTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)

    def test_contradiction_constant(self):
        system = _system(([0], -1))
        assert SvpcTest().run(system).verdict is Verdict.INDEPENDENT

    def test_scaled_coefficients(self):
        # 3t <= 7 and -3t <= -7: t <= 2 and t >= 3 -> independent
        # (no integer in [7/3, 7/3]).
        system = _system(([3], 7), ([-3], -7))
        assert SvpcTest().run(system).verdict is Verdict.INDEPENDENT

    def test_scaled_coefficients_feasible(self):
        # 3t <= 9 and -3t <= -9: t == 3.
        system = _system(([3], 9), ([-3], -9))
        result = SvpcTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert result.witness == (3,)


class TestExactness:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), small.filter(lambda x: x != 0), small),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=300)
    def test_matches_enumeration(self, rows):
        """SVPC agrees with brute force on random 3-var single-var systems."""
        system = ConstraintSystem(("t0", "t1", "t2"))
        for var, coeff, bound in rows:
            coeffs = [0, 0, 0]
            coeffs[var] = coeff
            system.add(coeffs, bound)
        result = SvpcTest().run(system)
        assert result.verdict in (Verdict.DEPENDENT, Verdict.INDEPENDENT)
        # Solutions, when they exist, include a point with coordinates
        # bounded by the largest |bound| + 1 (single-var constraints only).
        radius = max(abs(b) for _, _, b in rows) + 1
        brute = solve_system(system, -radius, radius)
        assert (brute is not None) == (result.verdict is Verdict.DEPENDENT)
        if result.witness is not None:
            assert system.evaluate(result.witness)
