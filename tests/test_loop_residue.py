"""Tests for the Simple Loop Residue test (including paper Figure 1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deptests.base import Verdict
from repro.deptests.loop_residue import LoopResidueTest, build_residue_graph
from repro.oracle.enumerate import solve_system
from repro.system.constraints import ConstraintSystem

small = st.integers(min_value=-8, max_value=8)


def _system(n, *rows):
    system = ConstraintSystem(tuple(f"t{i}" for i in range(n)))
    for coeffs, bound in rows:
        system.add(coeffs, bound)
    return system


class TestApplicability:
    def test_difference_constraints_ok(self):
        system = _system(2, ([1, -1], 3), ([-1, 1], 2), ([1, 0], 5))
        assert LoopResidueTest().applicable(system)

    def test_unequal_magnitudes_rejected(self):
        system = _system(2, ([2, -1], 3))
        assert not LoopResidueTest().applicable(system)
        assert (
            LoopResidueTest().run(system).verdict is Verdict.NOT_APPLICABLE
        )

    def test_same_sign_rejected(self):
        system = _system(2, ([1, 1], 3))
        assert not LoopResidueTest().applicable(system)

    def test_three_variables_rejected(self):
        system = _system(3, ([1, -1, 1], 3))
        assert not LoopResidueTest().applicable(system)

    def test_scaled_difference_accepted(self):
        # 3t0 - 3t1 <= 7 is the paper's exact extension: a*ti <= a*tj + c.
        system = _system(2, ([3, -3], 7))
        assert LoopResidueTest().applicable(system)


class TestFigure1:
    def test_paper_figure_1_negative_cycle(self):
        """The paper's Figure 1: a cycle t1 -> t3 -> n0 -> t1 of value -1.

        Constraints: t1 >= 1, t3 <= 4, t1 <= t3 - 4 (after the exact
        division step) — the cycle value 4 + 4 - 1 ... = -1 proves
        independence.
        """
        # t1 >= 1  ==>  -t1 <= -1 ; t3 <= 4 ; t1 - t3 <= -4
        system = _system(
            2,
            ([-1, 0], -1),  # n0 -> t1 arc value -1
            ([0, 1], 4),  # t3 -> n0 arc value 4
            ([1, -1], -4),  # t1 -> t3 arc value -4
        )
        graph = build_residue_graph(system)
        arcs = set(graph.arcs)
        assert (-1, 0, -1) in arcs  # n0 -> t1 value -1
        assert (1, -1, 4) in arcs  # t3 -> n0 value 4
        assert (0, 1, -4) in arcs  # t1 -> t3 value -4
        # cycle value: -4 + 4 + (-1) = -1 < 0 -> independent
        assert LoopResidueTest().run(system).verdict is Verdict.INDEPENDENT

    def test_exact_division_extension(self):
        # 2t0 <= 2t1 + 5  ==>  t0 - t1 <= floor(5/2) = 2 (exact for ints).
        system = _system(2, ([2, -2], 5))
        graph = build_residue_graph(system)
        assert (0, 1, 2) in set(graph.arcs)


class TestDecisions:
    def test_feasible_difference_chain(self):
        system = _system(
            3,
            ([1, -1, 0], -1),  # t0 <= t1 - 1
            ([0, 1, -1], -1),  # t1 <= t2 - 1
            ([0, 0, 1], 10),  # t2 <= 10
            ([-1, 0, 0], -1),  # t0 >= 1
        )
        result = LoopResidueTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)

    def test_infeasible_tight_cycle(self):
        # t0 <= t1 - 1 and t1 <= t0 - 1: cycle value -2.
        system = _system(2, ([1, -1], -1), ([-1, 1], -1))
        assert LoopResidueTest().run(system).verdict is Verdict.INDEPENDENT

    def test_zero_cycle_feasible(self):
        # t0 <= t1 and t1 <= t0 (equality through a zero-value cycle).
        system = _system(2, ([1, -1], 0), ([-1, 1], 0))
        result = LoopResidueTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert result.witness[0] == result.witness[1]

    def test_constant_contradiction(self):
        system = _system(1, ([0], -2))
        assert LoopResidueTest().run(system).verdict is Verdict.INDEPENDENT

    def test_unconstrained_variable_witness(self):
        system = _system(2, ([1, -1], 0))
        result = LoopResidueTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)


class TestExactnessAgainstOracle:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [(1, -1), (-1, 1), (1, 0), (-1, 0), (0, 1), (0, -1)]
                ),
                st.integers(-10, 10),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=300)
    def test_agrees_with_enumeration(self, rows):
        system = _system(2, *[(list(c), b) for c, b in rows])
        # Box so brute force is finite and the test sees the same system.
        system.add([1, 0], 8)
        system.add([-1, 0], 8)
        system.add([0, 1], 8)
        system.add([0, -1], 8)
        result = LoopResidueTest().run(system)
        assert result.verdict in (Verdict.DEPENDENT, Verdict.INDEPENDENT)
        brute = solve_system(system, -8, 8)
        assert (brute is not None) == (result.verdict is Verdict.DEPENDENT)
        if result.witness is not None:
            assert system.evaluate(result.witness)
