"""Direction/distance vector tests against the enumeration oracle."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import DependenceAnalyzer
from repro.ir import builder as B
from repro.oracle.enumerate import (
    oracle_direction_vectors,
    oracle_distance_set,
)

coef = st.integers(min_value=-2, max_value=2)
shift = st.integers(min_value=-6, max_value=6)
bound = st.integers(min_value=1, max_value=7)


class TestPaperExamples:
    def test_forward_dependence(self):
        # a[i+1] = a[i]: dependent only with direction '<'.
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        result = DependenceAnalyzer().directions(w, nest, r, nest)
        assert result.elementary_vectors() == {("<",)}

    def test_loop_independent_dependence(self):
        # a[i] = a[i]: only '='.
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i")])
        result = DependenceAnalyzer().directions(w, nest, r, nest)
        assert result.elementary_vectors() == {("=",)}

    def test_paper_section6_multi_vector(self):
        # The paper's two-vector example: a[i][j] = a[2i][j] for
        # i, j in 0..10.  Collisions need i = 2i', so i > i' whenever
        # i' >= 1 and i = i' at 0: directions (>, =) and (=, =).
        nest = B.nest(("i", 0, 10), ("j", 0, 10))
        w = B.ref("a", [B.v("i"), B.v("j")], write=True)
        r = B.ref("a", [B.v("i") * 2, B.v("j")])
        result = DependenceAnalyzer().directions(w, nest, r, nest)
        truth = oracle_direction_vectors(w, nest, r, nest)
        assert result.elementary_vectors() == truth
        assert (">", "=") in truth  # i=2 writes a[2][j], i'=1 reads it
        assert ("=", "=") in truth  # i = i' = 0

    def test_unused_variable_star(self):
        # Paper section 6: for i, for j: a[i] = a[j+1] -- direction for
        # the *inner* loop is computed, the outer unused one... here j
        # is used; make i the unused one instead: a[j] = a[j+1].
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        w = B.ref("a", [B.v("j")], write=True)
        r = B.ref("a", [B.v("j") + 1])
        result = DependenceAnalyzer().directions(w, nest, r, nest)
        assert all(vec[0] == "*" for vec in result.vectors)
        truth = oracle_direction_vectors(w, nest, r, nest)
        assert result.elementary_vectors() == truth

    def test_distance_example(self):
        # a[i] = a[i-3]: distance 3 (i' - i = ... write i, read i' with
        # i = i' - 3, so i' = i + 3, distance +3, direction '<').
        nest = B.nest(("i", 0, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") - 3])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(w, nest, r, nest)
        assert result.dependent
        assert result.distance == (3,)
        truth = oracle_distance_set(w, nest, r, nest)
        assert truth == {(3,)}

    def test_bounds_only_constant_distance_not_claimed(self):
        # Paper: a[10i+j] vs a[10(i+2)+j] has distance (2, 0) only
        # because of the bounds; the GCD method must NOT claim a wrong
        # constant, it reports None (unknown) for such levels.
        nest = B.nest(("i", 1, 8), ("j", 1, 10))
        w = B.ref("a", [B.v("i") * 10 + B.v("j")], write=True)
        r = B.ref("a", [(B.v("i") + 2) * 10 + B.v("j")])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(w, nest, r, nest)
        assert result.dependent
        # distances may be None (unknown) but never a wrong constant;
        # with d = i' - i and the write at the *larger* i, d = -2 here.
        truth = oracle_distance_set(w, nest, r, nest)
        assert truth == {(-2, 0)}
        for level, d in enumerate(result.distance):
            if d is not None:
                assert all(vec[level] == d for vec in truth)


class TestImplicitBranchAndBound:
    def test_real_but_not_integer_solution(self):
        # 2i' = 2i + 1 within bounds: GCD settles this one; build a case
        # where only direction refinement can: a[2i] vs a[i+n] with n
        # symbolic is still decidable... use the paper's description --
        # real dependence with distance in (0, 1).  3i' = 3i + 1 is GCD-
        # independent; instead craft 2i' = i + i' + 1, i.e. i' = i + 1
        # -- integral. Hard to hit without FM; covered in FM tests.
        # Here verify refinement returns empty vectors for an
        # integer-infeasible but real-feasible *bounded* system.
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i") * 2], write=True)
        r = B.ref("a", [B.v("i") * 2 + 1])
        result = DependenceAnalyzer().directions(w, nest, r, nest)
        assert result.independent
        assert result.vectors == frozenset()


class TestAgainstOracle:
    @given(coef, shift, coef, shift, bound)
    @settings(max_examples=250, deadline=None)
    def test_1d_direction_sets_exact(self, a1, c1, a2, c2, n):
        """Unpruned refinement is exact down to elementary vectors."""
        nest = B.nest(("i", 1, n))
        ref1 = B.ref("a", [B.v("i") * a1 + c1], write=True)
        ref2 = B.ref("a", [B.v("i") * a2 + c2])
        analyzer = DependenceAnalyzer(eliminate_unused=False)
        result = analyzer.directions(
            ref1, nest, ref2, nest, prune_unused=False, prune_distance=False
        )
        truth = oracle_direction_vectors(ref1, nest, ref2, nest)
        assert result.elementary_vectors() == truth

    @given(coef, coef, shift, coef, coef, shift, st.integers(1, 5))
    @settings(max_examples=200, deadline=None)
    def test_2d_direction_sets_exact(self, a, b, c, d, e, f, n):
        nest = B.nest(("i", 1, n), ("j", 1, n))
        ref1 = B.ref("a", [B.v("i") * a + B.v("j") * b + c], write=True)
        ref2 = B.ref("a", [B.v("i") * d + B.v("j") * e + f])
        analyzer = DependenceAnalyzer(eliminate_unused=False)
        result = analyzer.directions(
            ref1, nest, ref2, nest, prune_unused=False, prune_distance=False
        )
        truth = oracle_direction_vectors(ref1, nest, ref2, nest)
        assert result.elementary_vectors() == truth

    @given(coef, coef, shift, coef, coef, shift, st.integers(2, 5))
    @settings(max_examples=200, deadline=None)
    def test_2d_pruned_exact_for_real_loops(self, a, b, c, d, e, f, n):
        """With >= 2 iterations per loop the pruned answers are exact too."""
        nest = B.nest(("i", 1, n), ("j", 1, n))
        ref1 = B.ref("a", [B.v("i") * a + B.v("j") * b + c], write=True)
        ref2 = B.ref("a", [B.v("i") * d + B.v("j") * e + f])
        analyzer = DependenceAnalyzer()
        result = analyzer.directions(ref1, nest, ref2, nest)
        truth = oracle_direction_vectors(ref1, nest, ref2, nest)
        if any("*" in vec for vec in result.vectors):
            # '*' on an unused level summarizes all directions; exact
            # whenever that loop runs more than one iteration, which the
            # n >= 2 bound guarantees only when the level is genuinely
            # unused -- so the expansion must be a superset and agree on
            # the dependent/independent verdict.
            assert result.elementary_vectors() >= truth
            assert result.dependent == bool(truth)
        else:
            assert result.elementary_vectors() == truth

    @given(coef, shift, coef, shift, st.integers(1, 6))
    @settings(max_examples=150, deadline=None)
    def test_pruning_does_not_change_verdicts(self, a1, c1, a2, c2, n):
        """Tables 4 and 5 must agree on dependence; only costs differ."""
        nest = B.nest(("i", 1, n), ("j", 1, n))
        ref1 = B.ref("a", [B.v("i") * a1 + c1], write=True)
        ref2 = B.ref("a", [B.v("i") * a2 + B.v("j") * 0 + c2])
        naive = DependenceAnalyzer(eliminate_unused=False)
        pruned = DependenceAnalyzer()
        r_naive = naive.directions(
            ref1, nest, ref2, nest, prune_unused=False, prune_distance=False
        )
        r_pruned = pruned.directions(
            ref1, nest, ref2, nest, prune_unused=True, prune_distance=True
        )
        assert r_naive.dependent == r_pruned.dependent
        # Pruned vectors over-approximate only through '*' components.
        assert r_pruned.elementary_vectors() >= r_naive.elementary_vectors()
        assert r_pruned.tests_performed <= r_naive.tests_performed


class TestDistancesAgainstOracle:
    @given(shift, st.integers(1, 8))
    @settings(max_examples=150, deadline=None)
    def test_constant_shift_distance(self, c, n):
        nest = B.nest(("i", 1, n))
        ref1 = B.ref("a", [B.v("i") + c], write=True)
        ref2 = B.ref("a", [B.v("i")])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(ref1, nest, ref2, nest)
        truth = oracle_distance_set(ref1, nest, ref2, nest)
        if result.dependent and truth:
            assert result.distance is not None
            (d,) = result.distance
            assert truth == {(d,)}
