"""Tests for the consistent-hash ring (repro.serve.router.HashRing).

The cluster's correctness leans on three ring properties:

* **determinism** — placement is a pure function of (nodes, replicas,
  key), identical across runs AND processes (no process-seeded
  ``hash()`` anywhere), so every client/router/test agrees on each
  key's home;
* **minimal movement** — removing one node moves only the keys that
  homed on it (about 1/N of the key space), which is what makes the
  drain/re-shard protocol cheap and keeps the rest of the fleet warm;
* **balance** — 64 virtual nodes per worker spread the key space
  evenly enough that no worker becomes a hot spot.
"""

import json
import subprocess
import sys
from collections import Counter

import pytest

from repro.serve.router import HashRing, shard_key

WORKERS = tuple(f"w{i}" for i in range(8))


def _keys(count: int) -> list[bytes]:
    return [shard_key({"source": f"case {i}", "pair": i % 3}) for i in range(count)]


class TestDeterminism:
    def test_same_placement_across_instances(self):
        first = HashRing(WORKERS)
        second = HashRing(tuple(reversed(WORKERS)))  # insertion order is moot
        for key in _keys(500):
            assert first.node_for(key) == second.node_for(key)

    def test_same_placement_across_processes(self):
        """A fresh interpreter (fresh PYTHONHASHSEED) places every key
        exactly where this process does."""
        keys = _keys(100)
        script = (
            "import json, sys\n"
            "from repro.serve.router import HashRing\n"
            "ring = HashRing(tuple(json.loads(sys.argv[1])))\n"
            "keys = [bytes.fromhex(k) for k in json.loads(sys.argv[2])]\n"
            "print(json.dumps([ring.node_for(k) for k in keys]))\n"
        )
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                script,
                json.dumps(list(WORKERS)),
                json.dumps([k.hex() for k in keys]),
            ],
            capture_output=True,
            text=True,
            check=True,
        )
        ours = HashRing(WORKERS)
        assert json.loads(out.stdout) == [ours.node_for(k) for k in keys]

    def test_shard_key_is_canonical(self):
        assert shard_key({"b": 1, "a": 2}) == shard_key({"a": 2, "b": 1})
        assert shard_key({"a": 1}) != shard_key({"a": 2})


class TestMovement:
    def test_removal_moves_only_the_lost_nodes_keys(self):
        keys = _keys(2000)
        ring = HashRing(WORKERS)
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("w3")
        for key in keys:
            after = ring.node_for(key)
            if before[key] == "w3":
                assert after != "w3"
            else:
                assert after == before[key]

    def test_removal_moves_at_most_2_over_n(self):
        """The re-shard movement bound the drain protocol relies on:
        losing one of N workers re-homes at most ~2/N of the keys."""
        keys = _keys(2000)
        ring = HashRing(WORKERS)
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("w5")
        moved = sum(1 for key in keys if ring.node_for(key) != before[key])
        assert moved / len(keys) <= 2 / len(WORKERS)

    def test_rejoin_restores_the_original_placement(self):
        keys = _keys(1000)
        ring = HashRing(WORKERS)
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("w2")
        ring.add("w2")
        assert {key: ring.node_for(key) for key in keys} == before

    def test_addition_only_steals_for_the_new_node(self):
        keys = _keys(1000)
        ring = HashRing(WORKERS)
        before = {key: ring.node_for(key) for key in keys}
        ring.add("w8")
        for key in keys:
            after = ring.node_for(key)
            assert after == before[key] or after == "w8"


class TestBalance:
    def test_no_worker_owns_a_gross_share(self):
        ring = HashRing(WORKERS)
        counts = Counter(ring.node_for(key) for key in _keys(4000))
        assert set(counts) == set(WORKERS)
        fair = 4000 / len(WORKERS)
        for worker, count in counts.items():
            assert 0.4 * fair <= count <= 2.0 * fair, (worker, count)


class TestEdges:
    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().node_for(b"anything")

    def test_single_node_owns_everything(self):
        ring = HashRing(("only",))
        assert all(ring.node_for(key) == "only" for key in _keys(50))

    def test_remove_unknown_is_a_noop(self):
        ring = HashRing(("a", "b"))
        ring.remove("ghost")
        assert ring.nodes == ["a", "b"]

    def test_double_add_is_a_noop(self):
        ring = HashRing(("a",), replicas=16)
        ring.add("a")
        assert len(ring._positions) == 16

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(replicas=0)

    def test_membership_and_nodes(self):
        ring = HashRing(("b", "a"))
        assert "a" in ring and "c" not in ring
        assert ring.nodes == ["a", "b"]
        assert len(ring) == 2
