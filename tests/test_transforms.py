"""Tests for loop-transformation legality and parallelism detection."""

from repro.core.analyzer import DependenceAnalyzer
from repro.core.parallel import analyze_parallelism, carried_levels
from repro.core.transforms import (
    gather_dependences,
    interchange_legal,
    lexicographic_sign,
    permutation_legal,
    reversal_legal,
)
from repro.opt import compile_source


def _edges(source: str):
    program = compile_source(source).program
    return gather_dependences(program), program


class TestLexicographicSign:
    def test_signs(self):
        assert lexicographic_sign(("=", "<")) == 1
        assert lexicographic_sign((">",)) == -1
        assert lexicographic_sign(("=", "=")) == 0

    def test_wildcard_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            lexicographic_sign(("*",))


class TestInterchange:
    def test_legal_interchange(self):
        # (=, <) dependence: interchange gives (<, =), still positive.
        edges, _ = _edges(
            "for i = 1 to 10 do\n"
            "  for j = 2 to 10 do\n"
            "    a[i][j] = a[i][j - 1]\n"
            "  end\n"
            "end"
        )
        assert interchange_legal(edges, 0, 2)

    def test_illegal_interchange(self):
        # The classic (<, >) dependence makes interchange illegal.
        edges, _ = _edges(
            "for i = 2 to 10 do\n"
            "  for j = 1 to 9 do\n"
            "    a[i][j] = a[i - 1][j + 1]\n"
            "  end\n"
            "end"
        )
        assert not interchange_legal(edges, 0, 2)

    def test_jacobi_fully_permutable(self):
        edges, _ = _edges(
            "for i = 2 to 99 do\n"
            "  for j = 2 to 99 do\n"
            "    a[i][j] = b[i - 1][j] + b[i + 1][j]\n"
            "  end\n"
            "end"
        )
        assert permutation_legal(edges, [1, 0])
        assert permutation_legal(edges, [0, 1])

    def test_bad_permutation_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            permutation_legal([], [0, 0])


class TestReversal:
    def test_reversal_illegal_when_carried(self):
        edges, _ = _edges(
            "for i = 2 to 10 do\n  a[i] = a[i - 1]\nend"
        )
        assert not reversal_legal(edges, 0)

    def test_reversal_legal_when_independent(self):
        edges, _ = _edges(
            "for i = 1 to 10 do\n  a[i] = b[i]\nend"
        )
        assert reversal_legal(edges, 0)

    def test_reversal_legal_at_inner_equal_level(self):
        # (<, =): carried at level 0 only; level 1 may reverse.
        edges, _ = _edges(
            "for i = 2 to 10 do\n"
            "  for j = 1 to 10 do\n"
            "    a[i][j] = a[i - 1][j]\n"
            "  end\n"
            "end"
        )
        assert not reversal_legal(edges, 0)
        assert reversal_legal(edges, 1)


class TestParallelism:
    def test_carried_levels(self):
        analyzer = DependenceAnalyzer()
        from repro.ir import builder as B

        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        w = B.ref("a", [B.v("i"), B.v("j")], write=True)
        r = B.ref("a", [B.v("i") - 1, B.v("j")])
        result = analyzer.directions(w, nest, r, nest)
        assert carried_levels(result) == {0}

    def test_program_report(self):
        program = compile_source(
            "for i = 1 to 10 do\n"
            "  x[i] = x[i] + 1\n"
            "end\n"
            "for i = 2 to 10 do\n"
            "  y[i] = y[i - 1]\n"
            "end"
        ).program
        reports = analyze_parallelism(program)
        by_bounds = {
            (str(r.loop.lower), str(r.loop.upper)): r.parallel for r in reports
        }
        assert by_bounds[("1", "10")] is True
        assert by_bounds[("2", "10")] is False

    def test_star_carried_conservatively(self):
        # An unused outer loop gets '*' components; it must be treated
        # as potentially carrying (conservative for parallelization).
        program = compile_source(
            "for k = 1 to 5 do\n"
            "  for i = 2 to 10 do\n"
            "    a[i] = a[i - 1]\n"
            "  end\n"
            "end"
        ).program
        reports = analyze_parallelism(program)
        by_var = {r.loop.var: r.parallel for r in reports}
        assert by_var["i"] is False
        assert by_var["k"] is False  # '*' at level 0 is conservative

    def test_input_dependences_ignored(self):
        # Two reads never serialize a loop.
        program = compile_source(
            "for i = 2 to 10 do\n"
            "  a[i] = b[i] + b[i - 1]\n"
            "end"
        ).program
        reports = analyze_parallelism(program)
        assert all(r.parallel for r in reports)


class TestPermutationBruteForce:
    """permutation_legal's *-expansion vs exhaustive enumeration.

    The implementation expands each ``*`` via ``Direction.ALL`` and
    skips non-realizable elementary vectors; the oracle below spells
    the same semantics as a brute-force loop over *every* sign
    assignment of the whole vector.  They must agree on every vector in
    {<, =, >, *}^depth under every permutation.
    """

    class _Edge:
        def __init__(self, vector):
            self.vector = tuple(vector)

    @staticmethod
    def _oracle(vector, perm):
        import itertools

        from repro.core.transforms import lexicographic_sign

        depth = len(perm)
        padded = tuple(vector) + ("=",) * (depth - len(vector))
        domains = [
            ("<", "=", ">") if c == "*" else (c,) for c in padded[:depth]
        ]
        for elementary in itertools.product(*domains):
            if lexicographic_sign(elementary) < 0:
                continue  # not realizable source -> sink
            permuted = tuple(elementary[perm[new]] for new in range(depth))
            if lexicographic_sign(permuted) < 0:
                return False
        return True

    def _check_all(self, depth):
        import itertools

        components = ("<", "=", ">", "*")
        for vector in itertools.product(components, repeat=depth):
            edge = self._Edge(vector)
            for perm in itertools.permutations(range(depth)):
                assert permutation_legal([edge], perm) == self._oracle(
                    vector, perm
                ), f"vector={vector} perm={perm}"

    def test_depth_2_exhaustive(self):
        self._check_all(2)

    def test_depth_3_exhaustive(self):
        self._check_all(3)

    def test_short_vectors_pad_with_equals(self):
        # a depth-1 vector under a depth-3 permutation constrains only
        # its own level; deeper levels behave as '='
        edge = self._Edge(("<",))
        for perm in ((0, 1, 2), (0, 2, 1)):
            assert permutation_legal([edge], perm)
        # moving the carried level inward is still legal (< then =s)
        assert permutation_legal([edge], (1, 2, 0)) == self._oracle(
            ("<",), (1, 2, 0)
        )

    def test_multiple_edges_conjoin(self):
        # each edge alone permits some permutation the pair forbids
        first = self._Edge(("<", ">"))
        second = self._Edge((">",))  # never realizable: constrains nothing
        assert permutation_legal([second], (1, 0))
        assert not permutation_legal([first], (1, 0))
        assert not permutation_legal([first, second], (1, 0))
