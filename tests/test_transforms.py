"""Tests for loop-transformation legality and parallelism detection."""

from repro.core.analyzer import DependenceAnalyzer
from repro.core.parallel import analyze_parallelism, carried_levels
from repro.core.transforms import (
    gather_dependences,
    interchange_legal,
    lexicographic_sign,
    permutation_legal,
    reversal_legal,
)
from repro.opt import compile_source


def _edges(source: str):
    program = compile_source(source).program
    return gather_dependences(program), program


class TestLexicographicSign:
    def test_signs(self):
        assert lexicographic_sign(("=", "<")) == 1
        assert lexicographic_sign((">",)) == -1
        assert lexicographic_sign(("=", "=")) == 0

    def test_wildcard_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            lexicographic_sign(("*",))


class TestInterchange:
    def test_legal_interchange(self):
        # (=, <) dependence: interchange gives (<, =), still positive.
        edges, _ = _edges(
            "for i = 1 to 10 do\n"
            "  for j = 2 to 10 do\n"
            "    a[i][j] = a[i][j - 1]\n"
            "  end\n"
            "end"
        )
        assert interchange_legal(edges, 0, 2)

    def test_illegal_interchange(self):
        # The classic (<, >) dependence makes interchange illegal.
        edges, _ = _edges(
            "for i = 2 to 10 do\n"
            "  for j = 1 to 9 do\n"
            "    a[i][j] = a[i - 1][j + 1]\n"
            "  end\n"
            "end"
        )
        assert not interchange_legal(edges, 0, 2)

    def test_jacobi_fully_permutable(self):
        edges, _ = _edges(
            "for i = 2 to 99 do\n"
            "  for j = 2 to 99 do\n"
            "    a[i][j] = b[i - 1][j] + b[i + 1][j]\n"
            "  end\n"
            "end"
        )
        assert permutation_legal(edges, [1, 0])
        assert permutation_legal(edges, [0, 1])

    def test_bad_permutation_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            permutation_legal([], [0, 0])


class TestReversal:
    def test_reversal_illegal_when_carried(self):
        edges, _ = _edges(
            "for i = 2 to 10 do\n  a[i] = a[i - 1]\nend"
        )
        assert not reversal_legal(edges, 0)

    def test_reversal_legal_when_independent(self):
        edges, _ = _edges(
            "for i = 1 to 10 do\n  a[i] = b[i]\nend"
        )
        assert reversal_legal(edges, 0)

    def test_reversal_legal_at_inner_equal_level(self):
        # (<, =): carried at level 0 only; level 1 may reverse.
        edges, _ = _edges(
            "for i = 2 to 10 do\n"
            "  for j = 1 to 10 do\n"
            "    a[i][j] = a[i - 1][j]\n"
            "  end\n"
            "end"
        )
        assert not reversal_legal(edges, 0)
        assert reversal_legal(edges, 1)


class TestParallelism:
    def test_carried_levels(self):
        analyzer = DependenceAnalyzer()
        from repro.ir import builder as B

        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        w = B.ref("a", [B.v("i"), B.v("j")], write=True)
        r = B.ref("a", [B.v("i") - 1, B.v("j")])
        result = analyzer.directions(w, nest, r, nest)
        assert carried_levels(result) == {0}

    def test_program_report(self):
        program = compile_source(
            "for i = 1 to 10 do\n"
            "  x[i] = x[i] + 1\n"
            "end\n"
            "for i = 2 to 10 do\n"
            "  y[i] = y[i - 1]\n"
            "end"
        ).program
        reports = analyze_parallelism(program)
        by_bounds = {
            (str(r.loop.lower), str(r.loop.upper)): r.parallel for r in reports
        }
        assert by_bounds[("1", "10")] is True
        assert by_bounds[("2", "10")] is False

    def test_star_carried_conservatively(self):
        # An unused outer loop gets '*' components; it must be treated
        # as potentially carrying (conservative for parallelization).
        program = compile_source(
            "for k = 1 to 5 do\n"
            "  for i = 2 to 10 do\n"
            "    a[i] = a[i - 1]\n"
            "  end\n"
            "end"
        ).program
        reports = analyze_parallelism(program)
        by_var = {r.loop.var: r.parallel for r in reports}
        assert by_var["i"] is False
        assert by_var["k"] is False  # '*' at level 0 is conservative

    def test_input_dependences_ignored(self):
        # Two reads never serialize a loop.
        program = compile_source(
            "for i = 2 to 10 do\n"
            "  a[i] = b[i] + b[i - 1]\n"
            "end"
        ).program
        reports = analyze_parallelism(program)
        assert all(r.parallel for r in reports)
