"""Unit and property tests for the exact integer matrix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg.matrix import IntMatrix

small = st.integers(min_value=-20, max_value=20)


def matrices(max_dim: int = 4):
    return st.integers(1, max_dim).flatmap(
        lambda rows: st.integers(1, max_dim).flatmap(
            lambda cols: st.lists(
                st.lists(small, min_size=cols, max_size=cols),
                min_size=rows,
                max_size=rows,
            ).map(IntMatrix)
        )
    )


def square_matrices(max_dim: int = 4):
    return st.integers(1, max_dim).flatmap(
        lambda n: st.lists(
            st.lists(small, min_size=n, max_size=n), min_size=n, max_size=n
        ).map(IntMatrix)
    )


class TestConstruction:
    def test_identity(self):
        eye = IntMatrix.identity(3)
        assert eye.shape == (3, 3)
        assert eye[0, 0] == 1 and eye[0, 1] == 0

    def test_zeros(self):
        z = IntMatrix.zeros(2, 3)
        assert z.shape == (2, 3)
        assert all(x == 0 for row in z.rows for x in row)

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2], [3]])

    def test_copy_is_deep(self):
        m = IntMatrix([[1, 2], [3, 4]])
        n = m.copy()
        n[0, 0] = 99
        assert m[0, 0] == 1


class TestRowOperations:
    def test_swap(self):
        m = IntMatrix([[1, 2], [3, 4]])
        m.swap_rows(0, 1)
        assert m.rows == [[3, 4], [1, 2]]

    def test_negate(self):
        m = IntMatrix([[1, -2]])
        m.negate_row(0)
        assert m.rows == [[-1, 2]]

    def test_add_multiple(self):
        m = IntMatrix([[1, 2], [3, 4]])
        m.add_multiple_of_row(1, 0, -3)
        assert m.rows == [[1, 2], [0, -2]]

    @given(square_matrices())
    def test_row_ops_preserve_abs_determinant(self, m):
        det_before = abs(m.determinant())
        m.swap_rows(0, m.n_rows - 1)
        m.negate_row(0)
        if m.n_rows > 1:
            m.add_multiple_of_row(0, 1, 7)
        assert abs(m.determinant()) == det_before


class TestArithmetic:
    def test_matmul(self):
        a = IntMatrix([[1, 2], [3, 4]])
        b = IntMatrix([[5, 6], [7, 8]])
        assert (a @ b).rows == [[19, 22], [43, 50]]

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2]]) @ IntMatrix([[1, 2]])

    def test_vecmul(self):
        m = IntMatrix([[1, 0], [0, 2]])
        assert m.vecmul([3, 4]) == [3, 8]

    def test_transpose(self):
        m = IntMatrix([[1, 2, 3], [4, 5, 6]])
        assert m.transpose().rows == [[1, 4], [2, 5], [3, 6]]

    @given(matrices())
    def test_double_transpose(self, m):
        assert m.transpose().transpose() == m

    @given(square_matrices(3), square_matrices(3))
    def test_determinant_multiplicative(self, a, b):
        if a.shape != b.shape:
            return
        assert (a @ b).determinant() == a.determinant() * b.determinant()


class TestDeterminant:
    def test_identity(self):
        assert IntMatrix.identity(4).determinant() == 1

    def test_singular(self):
        assert IntMatrix([[1, 2], [2, 4]]).determinant() == 0

    def test_known(self):
        assert IntMatrix([[2, 0], [0, 3]]).determinant() == 6
        assert IntMatrix([[0, 1], [1, 0]]).determinant() == -1

    def test_3x3(self):
        m = IntMatrix([[1, 2, 3], [4, 5, 6], [7, 8, 10]])
        assert m.determinant() == -3

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            IntMatrix([[1, 2]]).determinant()


class TestPredicates:
    def test_unimodular(self):
        assert IntMatrix.identity(3).is_unimodular()
        assert IntMatrix([[1, 1], [0, 1]]).is_unimodular()
        assert not IntMatrix([[2, 0], [0, 1]]).is_unimodular()

    def test_echelon(self):
        assert IntMatrix([[1, 2, 3], [0, 1, 4], [0, 0, 0]]).is_echelon()
        assert IntMatrix([[0, 1], [1, 0]]).is_echelon() is False
        assert IntMatrix([[1, 0], [0, 0]]).is_echelon()
        # zero row above nonzero row is not echelon
        assert IntMatrix([[0, 0], [0, 1]]).is_echelon() is False
