"""Round-trip tests for the unparser."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.ast_nodes import (
    Access,
    BinOp,
    ForLoop,
    Name,
    Num,
    Read,
    SourceProgram,
)
from repro.lang.parser import parse
from repro.lang.unparse import program_to_source, unparse, unparse_expr
from repro.opt import compile_source

names = st.sampled_from(["i", "j", "k", "n", "x"])


def exprs(depth: int = 3):
    base = st.one_of(
        st.integers(0, 99).map(Num),
        names.map(Name),
    )
    if depth == 0:
        return base
    sub = exprs(depth - 1)
    return st.one_of(
        base,
        st.builds(BinOp, st.sampled_from(["+", "-", "*"]), sub, sub),
        st.builds(
            lambda arr, s: Access(arr, (s,)), st.sampled_from(["a", "b"]), sub
        ),
    )


class TestExprRoundTrip:
    @given(exprs())
    @settings(max_examples=300)
    def test_parse_of_unparse_evaluates_identically(self, expr):
        text = unparse_expr(expr)
        program = parse(f"x = {text}")
        reparsed = program.body[0].expr
        # Structural equality can differ in association; compare the
        # canonical re-rendering instead (idempotent after one trip).
        assert unparse_expr(reparsed) == text

    def test_parentheses_minimal(self):
        expr = BinOp("*", BinOp("+", Name("i"), Num(1)), Num(2))
        assert unparse_expr(expr) == "(i + 1) * 2"
        flat = BinOp("+", BinOp("+", Name("i"), Num(1)), Num(2))
        assert unparse_expr(flat) == "i + 1 + 2"

    def test_subtraction_grouping(self):
        # i - (j + 1) must keep its parentheses.
        expr = BinOp("-", Name("i"), BinOp("+", Name("j"), Num(1)))
        text = unparse_expr(expr)
        assert text == "i - (j + 1)"
        reparsed = parse(f"x = {text}").body[0].expr
        assert unparse_expr(reparsed) == text


class TestProgramRoundTrip:
    SOURCE = (
        "read(n)\n"
        "for i = 1 to n do\n"
        "  for j = 1 to i do\n"
        "    a[i][j] = a[i][j - 1] + b[j]\n"
        "  end for\n"
        "end for\n"
    )

    def test_canonical_fixpoint(self):
        once = unparse(parse(self.SOURCE))
        twice = unparse(parse(once))
        assert once == twice

    def test_round_trip_preserves_structure(self):
        program = parse(self.SOURCE)
        reparsed = parse(unparse(program))
        assert len(reparsed.body) == len(program.body)
        loop = reparsed.body[1]
        assert isinstance(loop, ForLoop)
        assert loop.var == "i"
        inner = loop.body[0]
        assert isinstance(inner, ForLoop) and inner.var == "j"

    def test_step_preserved(self):
        text = unparse(parse("for i = 1 to 9 step 2 do\nend for"))
        assert "step 2" in text
        assert parse(text).body[0].step == 2

    def test_read_preserved(self):
        program = SourceProgram(body=[Read("m")])
        assert unparse(program) == "read(m)\n"


class TestIrToSource:
    def test_ir_round_trip_same_dependences(self):
        """IR -> source -> IR preserves every dependence verdict."""
        from repro.core.analyzer import DependenceAnalyzer
        from repro.ir.program import reference_pairs

        source = (
            "read(n)\n"
            "for i = 2 to n do\n"
            "  a[i] = a[i - 1] + c[i]\n"
            "end for\n"
            "for i = 1 to 50 do\n"
            "  c[i] = c[i + 50]\n"
            "end for\n"
        )
        first = compile_source(source).program
        second = compile_source(program_to_source(first)).program
        analyzer = DependenceAnalyzer()

        def verdicts(program):
            return sorted(
                (
                    str(s1.ref),
                    str(s2.ref),
                    analyzer.analyze_sites(s1, s2).dependent,
                )
                for s1, s2 in reference_pairs(program)
            )

        assert verdicts(first) == verdicts(second)

    def test_symbols_emitted_as_reads(self):
        program = compile_source(
            "read(n)\nfor i = 1 to n do\n  a[i] = 0\nend"
        ).program
        text = program_to_source(program)
        assert "read(n)" in text
        # and it recompiles cleanly
        again = compile_source(text).program
        assert len(again.statements) == 1
