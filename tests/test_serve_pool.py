"""Tests for the persistent worker pool (repro.serve.pool)."""

import os

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.core.engine import analyze_batch, queries_from_suite
from repro.perfect import load_suite
from repro.serve.pool import WorkerPool


def _double(value):
    return value * 2


def _crash_once(arg):
    """Crash the worker process while the flag file exists (and remove
    it first, so the pool's retry succeeds)."""
    flag, value = arg
    if os.path.exists(flag):
        try:
            os.unlink(flag)
        except OSError:
            pass
        os._exit(13)
    return value * 2


def _always_crash(_value):
    os._exit(13)


class TestSubmitMap:
    def test_plain_map(self):
        with WorkerPool(jobs=2) as pool:
            assert pool.submit_map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_pool_is_reused_across_calls(self):
        with WorkerPool(jobs=2) as pool:
            pool.submit_map(_double, [1])
            executor = pool._executor
            pool.submit_map(_double, [2])
            assert pool._executor is executor
            assert pool.recycles == 0

    def test_crashed_worker_is_recycled_and_retried(self, tmp_path):
        flag = str(tmp_path / "crash-flag")
        with open(flag, "w") as handle:
            handle.write("1")
        with WorkerPool(jobs=2, retries=1) as pool:
            results = pool.submit_map(
                _crash_once, [(flag, i) for i in range(4)]
            )
            assert results == [0, 2, 4, 6]
            assert pool.recycles == 1
            # The recycled pool keeps serving.
            assert pool.submit_map(_double, [5]) == [10]

    def test_retries_exhausted_raises(self):
        with WorkerPool(jobs=2, retries=1) as pool:
            with pytest.raises(BrokenProcessPool):
                pool.submit_map(_always_crash, [1, 2])
            assert pool.recycles == 2  # initial failure + failed retry

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(jobs=0)


class TestRunBatch:
    def test_pooled_batch_is_bit_identical_to_serial(self):
        queries = queries_from_suite(
            load_suite(include_symbolic=True, scale=0.02)
        )
        serial = analyze_batch(queries, jobs=1, want_directions=True)
        with WorkerPool(jobs=2) as pool:
            pooled = pool.run_batch(queries, want_directions=True)
        assert len(pooled.outcomes) == len(serial.outcomes)
        for mine, ref in zip(pooled.outcomes, serial.outcomes):
            assert mine.result.dependent == ref.result.dependent
            assert mine.result.decided_by == ref.result.decided_by
            assert mine.result.distance == ref.result.distance
            if ref.directions is None:
                assert mine.directions is None
            else:
                assert mine.directions.vectors == ref.directions.vectors

    def test_run_batch_defaults_jobs_to_pool_size(self):
        queries = queries_from_suite(load_suite(scale=0.02))
        with WorkerPool(jobs=2) as pool:
            report = pool.run_batch(queries)
        assert report.jobs == 2
