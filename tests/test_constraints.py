"""Tests for canonical linear constraints and constraint systems."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.system.constraints import (
    NEG_INF,
    POS_INF,
    ConstraintSystem,
    LinearConstraint,
)

small = st.integers(min_value=-30, max_value=30)


class TestNormalization:
    def test_gcd_divides_through(self):
        c = LinearConstraint.make([2, 4], 5)
        assert c.coeffs == (1, 2)
        assert c.bound == 2  # floor(5/2): exact integer tightening

    def test_floor_tightening_negative(self):
        c = LinearConstraint.make([3], -5)
        assert c.coeffs == (1,)
        assert c.bound == -2  # 3t <= -5  =>  t <= -2

    def test_no_change_when_coprime(self):
        c = LinearConstraint.make([2, 3], 7)
        assert c.coeffs == (2, 3) and c.bound == 7

    @given(st.lists(small, min_size=1, max_size=4), small)
    def test_normalization_preserves_integer_points(self, coeffs, bound):
        raw = LinearConstraint(tuple(coeffs), bound)
        norm = LinearConstraint.make(coeffs, bound)
        for point in [(0,) * len(coeffs), (1,) * len(coeffs), (-2,) * len(coeffs)]:
            assert raw.evaluate(point) == norm.evaluate(point)


class TestStructure:
    def test_variables(self):
        c = LinearConstraint.make([1, 0, -2], 3)
        assert c.variables() == (0, 2)
        assert c.num_vars_used == 2

    def test_trivial_and_contradiction(self):
        assert LinearConstraint.make([0, 0], 5).is_trivial
        assert LinearConstraint.make([0, 0], -1).is_contradiction
        assert not LinearConstraint.make([1], -1).is_contradiction

    def test_substitute(self):
        c = LinearConstraint.make([2, 3], 10)
        out = c.substitute(1, 2)  # 2t0 + 6 <= 10 -> 2t0 <= 4 -> t0 <= 2
        assert out.coeffs == (1, 0)
        assert out.bound == 2

    def test_substitute_absent(self):
        c = LinearConstraint.make([1, 0], 5)
        assert c.substitute(1, 99) is c

    def test_str(self):
        text = str(LinearConstraint.make([1, -2], 3))
        assert "<=" in text


class TestSystem:
    def test_add_checks_arity(self):
        system = ConstraintSystem(("a", "b"))
        with pytest.raises(ValueError):
            system.add([1], 0)

    def test_single_variable_intervals(self):
        system = ConstraintSystem(("t1", "t2"))
        system.add([1, 0], 10)  # t1 <= 10
        system.add([-1, 0], -1)  # t1 >= 1
        system.add([0, 2], 7)  # t2 <= 3
        system.add([0, -3], 6)  # t2 >= -2
        lo_hi = system.single_variable_intervals()
        assert (lo_hi[0].lo, lo_hi[0].hi) == (1, 10)
        assert (lo_hi[1].lo, lo_hi[1].hi) == (-2, 3)

    def test_interval_unbounded(self):
        system = ConstraintSystem(("t1",))
        intervals = system.single_variable_intervals()
        assert intervals[0].lo == NEG_INF and intervals[0].hi == POS_INF
        assert intervals[0].pick() == 0

    def test_interval_empty_and_pick_raises(self):
        system = ConstraintSystem(("t1",))
        system.add([1], 0)  # t <= 0
        system.add([-1], -5)  # t >= 5
        (interval,) = system.single_variable_intervals()
        assert interval.empty
        with pytest.raises(ValueError):
            interval.pick()

    def test_negative_coefficient_lower_bound(self):
        system = ConstraintSystem(("t",))
        system.add([-2], -5)  # -2t <= -5  =>  t >= 2.5  =>  t >= 3
        (interval,) = system.single_variable_intervals()
        assert interval.lo == 3

    def test_multi_var_ignored_by_intervals(self):
        system = ConstraintSystem(("a", "b"))
        system.add([1, 1], 5)
        intervals = system.single_variable_intervals()
        assert intervals[0].hi == POS_INF

    def test_evaluate(self):
        system = ConstraintSystem(("a", "b"))
        system.add([1, 1], 5)
        system.add([-1, 0], 0)
        assert system.evaluate((0, 5))
        assert not system.evaluate((0, 6))

    def test_used_variables_and_max_arity(self):
        system = ConstraintSystem(("a", "b", "c"))
        system.add([1, 0, 0], 3)
        system.add([1, -1, 0], 0)
        assert system.used_variables() == {0, 1}
        assert system.max_vars_per_constraint() == 2

    def test_without_trivial(self):
        system = ConstraintSystem(("a",))
        system.add([0], 5)
        system.add([1], 2)
        assert len(system.without_trivial().constraints) == 1

    def test_copy_independent(self):
        system = ConstraintSystem(("a",))
        system.add([1], 2)
        clone = system.copy()
        clone.add([1], 3)
        assert len(system.constraints) == 1
