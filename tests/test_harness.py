"""Integration tests for the experiment harness (scaled-down runs)."""


from repro.harness.experiments import (
    collect_table1,
    render_table1,
    run_baseline_comparison,
    run_outcomes,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table7,
)
from repro.obs.metrics import MetricsRegistry
from repro.harness.tables import render_table
from repro.harness.timing import representative_system, time_tests


class TestRenderer:
    def test_basic_table(self):
        text = render_table(
            "T", ["A", "B"], [["x", 1], ["y", 22]], footer=["sum", 23]
        )
        assert "T" in text
        assert "22" in text and "23" in text
        lines = text.splitlines()
        assert len({len(l) for l in lines[1:]} | set()) >= 1

    def test_number_formatting(self):
        text = render_table("T", ["N"], [[12345]])
        assert "12,345" in text


class TestTable1:
    def test_full_run_matches_paper_totals(self):
        result = run_table1()
        footer_like = result.rows
        totals = [0] * 6
        for row in footer_like:
            for k in range(6):
                totals[k] += row[k + 2]
        assert totals == [11_859, 384, 5_176, 323, 6, 174]

    def test_rows_cover_programs(self):
        result = run_table1(scale=0.05)
        assert len(result.rows) == 13
        assert result.rows[0][0] == "AP"

    def test_regenerates_bit_identically_from_registries(self):
        """Acceptance: tables rebuild from serialized metrics alone."""
        collected = collect_table1(scale=0.05)
        rendered = render_table1(collected)
        round_tripped = render_table1(
            [
                (name, lines, MetricsRegistry.from_dict(registry.to_dict()))
                for name, lines, registry in collected
            ]
        )
        assert round_tripped.text == rendered.text
        assert round_tripped.rows == rendered.rows
        assert rendered.text == run_table1(scale=0.05).text


class TestTable2:
    def test_improved_never_more_unique_than_simple(self):
        result = run_table2(scale=0.2)
        for row in result.rows:
            assert row[3] <= row[2] + 1e-9  # NB improved <= simple
            assert row[6] <= row[5] + 1e-9  # WB improved <= simple


class TestTable3:
    def test_unique_tests_paper_total(self):
        result = run_table3()
        assert result.extra["unique_tests"] == 332
        assert result.extra["total_cases"] == 5_679

    def test_memoization_reduction(self):
        result = run_table3()
        assert result.extra["unique_tests"] < result.extra["total_cases"] / 10


class TestDirectionTables:
    def test_pruning_reduces_tests(self):
        naive = run_table4(scale=0.05)
        pruned = run_table5(scale=0.05)
        assert pruned.extra["total_tests"] < naive.extra["total_tests"]
        # The paper reports roughly an order of magnitude; demand > 3x.
        assert (
            naive.extra["total_tests"]
            > 3 * pruned.extra["total_tests"]
        )

    def test_symbolic_adds_tests(self):
        plain = run_table5(scale=0.05)
        symbolic = run_table7(scale=0.05)
        assert symbolic.extra["total_tests"] > plain.extra["total_tests"]


class TestOutcomes:
    def test_every_test_row_present(self):
        result = run_outcomes(scale=0.05)
        names = [row[0] for row in result.rows]
        assert names == [
            "svpc", "acyclic", "loop_residue", "fourier_motzkin"
        ]


class TestBaselineComparison:
    def test_baseline_misses_independent_pairs(self):
        result = run_baseline_comparison(scale=0.05)
        assert (
            result.extra["independent_baseline"]
            < result.extra["independent_exact"]
        )

    def test_baseline_over_reports_vectors(self):
        result = run_baseline_comparison(scale=0.05)
        assert (
            result.extra["vectors_baseline"] >= result.extra["vectors_exact"]
        )


class TestTimings:
    def test_representative_systems_decidable(self):
        from repro.deptests.base import Verdict
        from repro.deptests.fourier_motzkin import FourierMotzkinTest
        from repro.deptests.loop_residue import LoopResidueTest
        from repro.deptests.svpc import SvpcTest

        assert (
            SvpcTest().run(representative_system("svpc")).verdict.decided
        )
        assert (
            LoopResidueTest()
            .run(representative_system("loop_residue"))
            .verdict.decided
        )
        fm = FourierMotzkinTest().run(
            representative_system("fourier_motzkin")
        )
        assert fm.verdict is not Verdict.NOT_APPLICABLE

    def test_time_tests_returns_all_four(self):
        timings = time_tests(repeats=3)
        assert {t.name for t in timings} == {
            "svpc", "acyclic", "loop_residue", "fourier_motzkin"
        }
        for timing in timings:
            assert timing.microseconds > 0
