"""The language frontends: Python/C extraction, goldens, round trips.

The corpus under ``tests/corpus/frontends/`` holds real loop nests in
both surface languages plus committed golden dumps of each file's
dependence graph and skip-reason list.  Regenerate the goldens after
an intentional change with::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/test_frontends.py

and review the diff like any other code change.
"""

import json
import os
import pathlib

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.core.graph import build_graph
from repro.frontends import (
    SkipReason,
    detect_language,
    extract_path,
    extract_source,
    program_to_c,
    program_to_python,
)
from repro.lang.unparse import program_to_source
from repro.opt import compile_source

CORPUS = pathlib.Path(__file__).parent / "corpus" / "frontends"
GOLDEN = CORPUS / "golden"
EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

SOURCES = sorted(
    path for path in CORPUS.iterdir() if path.suffix in (".py", ".c")
)
STEMS = sorted({path.stem for path in SOURCES})
# skips.py / skips.c demonstrate each language's own refusals — they
# are deliberately not semantic twins.
TWIN_STEMS = sorted(
    stem
    for stem in STEMS
    if stem != "skips"
    and (CORPUS / f"{stem}.py").exists()
    and (CORPUS / f"{stem}.c").exists()
)


def _edges(program) -> list[dict]:
    return build_graph(program, DependenceAnalyzer()).edge_dicts()


def _snapshot(path: pathlib.Path) -> dict:
    extraction = extract_path(path)
    return {
        "language": extraction.language,
        "nests": len(extraction.nests),
        "statements": len(extraction.program.statements),
        "symbols": sorted(extraction.symbols),
        "skips": [
            f"{record.reason}@{record.line}" for record in extraction.skipped
        ],
        "edges": _edges(extraction.program),
    }


# -- corpus goldens ---------------------------------------------------------


@pytest.mark.parametrize("path", SOURCES, ids=lambda p: p.name)
def test_corpus_matches_golden(path):
    """Every corpus file's graph + skip list is pinned by a golden."""
    got = _snapshot(path)
    golden_path = GOLDEN / f"{path.name}.json"
    if os.environ.get("REPRO_REGEN_GOLDENS"):
        golden_path.write_text(
            json.dumps(got, indent=2, sort_keys=True) + "\n"
        )
    assert golden_path.exists(), (
        f"missing golden {golden_path.name}; run with REPRO_REGEN_GOLDENS=1"
    )
    want = json.loads(golden_path.read_text())
    assert got == want


@pytest.mark.parametrize("stem", TWIN_STEMS)
def test_twins_produce_identical_graphs(stem):
    """The .py and .c renderings of one kernel are indistinguishable."""
    py = extract_path(CORPUS / f"{stem}.py")
    c = extract_path(CORPUS / f"{stem}.c")
    assert _edges(py.program) == _edges(c.program)
    assert py.symbols == c.symbols
    assert len(py.nests) == len(c.nests)


def test_corpus_covers_skip_reasons():
    """The skip corpus exercises a broad slice of the stable codes."""
    seen = set()
    for path in (CORPUS / "skips.py", CORPUS / "skips.c"):
        seen |= {record.reason for record in extract_path(path).skipped}
    assert seen >= {
        SkipReason.NON_RANGE_LOOP,
        SkipReason.UNSUPPORTED_STATEMENT,
        SkipReason.NON_LITERAL_STEP,
        SkipReason.NONAFFINE_SUBSCRIPT,
        SkipReason.SLICE_SUBSCRIPT,
        SkipReason.CALL_EXPRESSION,
        SkipReason.CONTROL_FLOW,
        SkipReason.ALIAS,
        SkipReason.POINTER,
        SkipReason.UNSUPPORTED_EXPRESSION,
        SkipReason.MALFORMED_LOOP,
    }
    assert seen <= set(SkipReason.ALL)


# -- round trips ------------------------------------------------------------


@pytest.mark.parametrize("path", SOURCES, ids=lambda p: p.name)
def test_unparse_to_loop_roundtrip(path):
    """extract -> IR -> mini-Fortran text -> re-compile -> same graph."""
    extraction = extract_path(path)
    text = program_to_source(extraction.program)
    recompiled = compile_source(text, name="<roundtrip>", strict=False)
    assert not recompiled.skipped
    assert _edges(recompiled.program) == _edges(extraction.program)


@pytest.mark.parametrize("stem", TWIN_STEMS)
def test_emitters_roundtrip(stem):
    """IR -> emitted .py/.c -> re-extract -> bit-identical graph."""
    extraction = extract_path(CORPUS / f"{stem}.py")
    native = _edges(extraction.program)
    for lang, emit in (("python", program_to_python), ("c", program_to_c)):
        text = emit(extraction.program)
        back = extract_source(text, lang=lang, name=f"<{lang}>")
        assert not back.skipped, back.skipped
        assert _edges(back.program) == native


def test_example_stencil_twins():
    """The shipped examples/stencil.py twin matches its .loop source."""
    py = extract_path(EXAMPLES / "stencil.py")
    loop = extract_path(EXAMPLES / "stencil.loop")
    assert _edges(py.program) == _edges(loop.program)
    assert _edges(py.program)  # non-empty: the stencil has dependences


# -- extraction metadata ----------------------------------------------------


def test_detect_language():
    assert detect_language("a.py") == "python"
    assert detect_language("a.c") == "c"
    assert detect_language("a.h") == "c"
    assert detect_language("a.loop") == "loop"
    assert detect_language("a.txt") == "loop"


def test_extraction_is_deterministic():
    text = (CORPUS / "skips.py").read_text()
    first = extract_source(text, lang="python", name="x").to_dict()
    second = extract_source(text, lang="python", name="x").to_dict()
    assert first == second


def test_nests_carry_spans_and_context():
    extraction = extract_path(CORPUS / "jacobi2d.py")
    assert [nest.context for nest in extraction.nests] == [
        "jacobi2d",
        "jacobi2d",
    ]
    assert all(nest.depth == 2 for nest in extraction.nests)
    assert extraction.nests[0].span.line < extraction.nests[1].span.line
    for nest in extraction.nests:
        assert nest.loop_variables() == ("i", "j")


def test_parse_error_is_a_skip_not_a_crash():
    extraction = extract_source("def broken(:\n", lang="python", name="x")
    assert not extraction.program.statements
    assert [r.reason for r in extraction.skipped] == [SkipReason.PARSE_ERROR]


def test_unknown_language_rejected():
    with pytest.raises(ValueError):
        extract_source("x", lang="fortran", name="x")


# -- python frontend unit behaviour -----------------------------------------


def _python(text: str):
    return extract_source(text, lang="python", name="<t>")


def test_python_numpy_style_subscripts():
    ext = _python(
        "def f(A, B, n):\n"
        "    for i in range(0, n):\n"
        "        for j in range(0, n):\n"
        "            A[i, j] = B[j, i]\n"
    )
    assert not ext.skipped
    (stmt,) = ext.program.statements
    assert len(stmt.write.subscripts) == 2
    assert [str(r) for r in stmt.reads] == ["B[j][i]"]


def test_python_downward_range_normalizes():
    ext = _python(
        "def f(A, B):\n"
        "    for i in range(10, 0, -1):\n"
        "        A[i] = B[i]\n"
    )
    assert not ext.skipped
    assert len(ext.program.statements) == 1


def test_python_augassign_is_read_modify_write():
    ext = _python(
        "def f(A, n):\n"
        "    for i in range(0, n):\n"
        "        A[i] += A[i]\n"
    )
    (stmt,) = ext.program.statements
    assert str(stmt.write) in {str(r) for r in stmt.reads}


def test_python_induction_scalar_folds():
    ext = _python(
        "def f(A, n):\n"
        "    k = 0\n"
        "    for i in range(0, n):\n"
        "        A[k] = 0\n"
        "        k = k + 2\n"
    )
    assert not ext.skipped
    (stmt,) = ext.program.statements
    assert str(stmt.write) == "A[2*i]"


def test_python_alias_refused():
    ext = _python(
        "def f(A, n):\n"
        "    row = A\n"
        "    for i in range(0, n):\n"
        "        row[i] = 0\n"
    )
    assert [r.reason for r in ext.skipped] == [SkipReason.ALIAS]
    assert not ext.program.statements


def test_python_rank_mismatch_drops_later_use():
    ext = _python(
        "def f(A, n):\n"
        "    for i in range(0, n):\n"
        "        A[i] = 0\n"
        "\n"
        "def g(A, n):\n"
        "    for i in range(0, n):\n"
        "        A[i][0] = 1\n"
    )
    assert [r.reason for r in ext.skipped] == [SkipReason.RANK_MISMATCH]
    assert len(ext.program.statements) == 1


def test_python_free_names_become_symbols():
    ext = _python(
        "def f(A):\n"
        "    for i in range(lo, hi):\n"
        "        A[i + off] = 0\n"
    )
    assert not ext.skipped
    assert ext.symbols >= {"lo", "hi", "off"}


# -- c frontend unit behaviour ----------------------------------------------


def _c(text: str):
    return extract_source(text, lang="c", name="<t>")


def test_c_bound_inclusivity():
    ext = _c(
        "void f(int n) {\n"
        "  int i;\n"
        "  for (i = 0; i <= n; i++) A[i] = 0;\n"
        "  for (i = 0; i < n; i++) B[i] = 0;\n"
        "}\n"
    )
    assert not ext.skipped
    first, second = ext.program.statements
    assert first.nest.loops[0].upper != second.nest.loops[0].upper


def test_c_downward_loop():
    ext = _c(
        "void f(void) {\n"
        "  int i;\n"
        "  for (i = 10; i > 0; i--) A[i] = A[i - 1];\n"
        "}\n"
    )
    assert not ext.skipped
    assert len(ext.program.statements) == 1


def test_c_downward_symbolic_span_skips():
    """A downward loop over a symbolic span cannot be normalized —
    exactly like its native mini-Fortran equivalent — and must say so."""
    ext = _c(
        "void f(int n) {\n"
        "  int i;\n"
        "  for (i = n; i > 0; i--) A[i] = A[i - 1];\n"
        "}\n"
    )
    assert [r.reason for r in ext.skipped] == [
        SkipReason.NONNORMALIZABLE_STEP
    ]


def test_c_compound_assignment_is_rmw():
    ext = _c(
        "void f(int n) {\n"
        "  int i;\n"
        "  for (i = 0; i < n; i++) A[i] *= 2;\n"
        "}\n"
    )
    (stmt,) = ext.program.statements
    assert str(stmt.write) in {str(r) for r in stmt.reads}


def test_c_pointer_store_poisons():
    ext = _c(
        "void f(int n) {\n"
        "  int i;\n"
        "  int *p;\n"
        "  for (i = 0; i < n; i++) p[i] = 0;\n"
        "}\n"
    )
    assert SkipReason.POINTER in {r.reason for r in ext.skipped}
    assert not ext.program.statements


def test_c_alias_refused():
    ext = _c(
        "void f(int n) {\n"
        "  int i;\n"
        "  q = A;\n"
        "  for (i = 0; i < n; i++) q[i] = 0;\n"
        "}\n"
    )
    assert SkipReason.ALIAS in {r.reason for r in ext.skipped}


def test_c_statement_recovery_keeps_going():
    """A refused statement never swallows its neighbours."""
    ext = _c(
        "void f(int n) {\n"
        "  int i;\n"
        "  for (i = 0; i < n; i++) {\n"
        "    A[i % 3] = 0;\n"
        "    B[i] = A[i];\n"
        "  }\n"
        "}\n"
    )
    assert SkipReason.UNSUPPORTED_EXPRESSION in {
        r.reason for r in ext.skipped
    }
    assert [str(stmt.write) for stmt in ext.program.statements] == ["B[i]"]


def test_c_preprocessor_and_comments_skipped():
    ext = _c(
        "#include <stdio.h>\n"
        "#define N 100\n"
        "/* block */\n"
        "// line\n"
        "void f(int n) {\n"
        "  int i;\n"
        "  for (i = 0; i < n; i++) A[i] = 0;\n"
        "}\n"
    )
    assert not ext.skipped
    assert len(ext.program.statements) == 1


# -- api integration --------------------------------------------------------


def test_analyze_source_api():
    from repro.api import analyze_source

    text = (CORPUS / "seidel.py").read_text()
    result = analyze_source(text, lang="python", name="seidel.py")
    assert result.report.pairs
    summary = result.summary()
    assert summary["nests"] == 1
    assert summary["unique_pairs"] == len(result.report.pairs)
