"""Tests for the seeded network-chaos proxy (repro.robust.netchaos).

Mirrors ``tests/test_chaos.py`` one layer down: every fault the proxy
injects is a pure SHA-256 function of ``(seed, site, conn, frame)``,
so the tests precompute fault schedules with :meth:`NetFaultPlan.peek`
and then assert the live proxy injected *exactly* those faults — and
that the resilient client recovers to bit-identical answers through
all of them.
"""

import socket
import threading

import pytest

from repro.robust.netchaos import (
    CONNECT_KINDS,
    DELAY,
    DROP,
    FRAME_KINDS,
    PARTITION,
    RESET,
    SITE_CONNECT,
    SITE_REQUEST,
    SITE_RESPONSE,
    TORN,
    ChaosProxy,
    NetFaultPlan,
)
from repro.serve.client import (
    CircuitBreaker,
    Client,
    RetryPolicy,
    TransportError,
)

from tests.test_serve_server import SOURCE, _RunningServer


class TestNetFaultPlan:
    def test_rates_are_validated(self):
        with pytest.raises(ValueError, match="drop_rate"):
            NetFaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError, match="torn_rate"):
            NetFaultPlan(torn_rate=-0.1)
        with pytest.raises(ValueError, match="partition_conns"):
            NetFaultPlan(partition_conns=0)

    def test_json_roundtrip(self):
        plan = NetFaultPlan(
            seed=9, drop_rate=0.1, torn_rate=0.2, delay_s=0.01, partition_conns=2
        )
        assert NetFaultPlan.from_json(plan.to_json()) == plan

    def test_uniform_is_pure_and_seed_sensitive(self):
        plan = NetFaultPlan(seed=3)
        for key in ("0", "1:5", "2:0"):
            draw = plan.uniform(SITE_REQUEST, key)
            assert 0.0 <= draw < 1.0
            assert draw == NetFaultPlan(seed=3).uniform(SITE_REQUEST, key)
            assert draw != NetFaultPlan(seed=4).uniform(SITE_REQUEST, key)
        assert plan.uniform(SITE_REQUEST, "0:0") != plan.uniform(
            SITE_RESPONSE, "0:0"
        )

    def test_peek_walks_cumulative_thresholds(self):
        # rate 1.0 on the first kind of each site tuple wins everything.
        assert NetFaultPlan(delay_rate=1.0).peek(SITE_CONNECT, 0) == DELAY
        assert NetFaultPlan(drop_rate=1.0).peek(SITE_REQUEST, 0, 0) == DROP
        assert NetFaultPlan(reset_rate=1.0).peek(SITE_RESPONSE, 3, 7) == RESET

    def test_kinds_are_site_scoped(self):
        # torn is a frame fault; partition is a connect fault.  A plan
        # that only tears can never fault a connect, and vice versa.
        torn_only = NetFaultPlan(torn_rate=1.0)
        assert torn_only.peek(SITE_CONNECT, 0) is None
        assert torn_only.peek(SITE_REQUEST, 0, 0) == TORN
        partition_only = NetFaultPlan(partition_rate=1.0)
        assert partition_only.peek(SITE_CONNECT, 0) == PARTITION
        assert partition_only.peek(SITE_RESPONSE, 0, 0) is None
        assert TORN not in CONNECT_KINDS and PARTITION not in FRAME_KINDS

    def test_peek_rejects_unknown_sites(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            NetFaultPlan().peek("disk", 0)

    def test_zero_rates_never_fault(self):
        plan = NetFaultPlan(seed=42)
        for conn in range(50):
            assert plan.peek(SITE_CONNECT, conn) is None
            for frame in range(10):
                assert plan.peek(SITE_REQUEST, conn, frame) is None
                assert plan.peek(SITE_RESPONSE, conn, frame) is None


class _RunningProxy:
    """A ChaosProxy on a background thread, shut down on exit."""

    def __init__(self, plan: NetFaultPlan, upstream: _RunningServer):
        self.proxy = ChaosProxy(
            plan,
            upstream.server.bound_host,
            upstream.server.bound_port,
        )
        self.thread = threading.Thread(target=self.proxy.run, daemon=True)
        self.thread.start()
        assert self.proxy.started.wait(10), "proxy did not start"

    @property
    def endpoint(self) -> str:
        return f"tcp://{self.proxy.bound_host}:{self.proxy.bound_port}"

    def stop(self) -> None:
        self.proxy.request_shutdown()
        self.thread.join(10)
        assert not self.thread.is_alive(), "proxy did not stop"


@pytest.fixture
def upstream():
    handle = _RunningServer()
    yield handle
    handle.stop()


@pytest.fixture
def proxied(upstream):
    proxies = []

    def make(plan: NetFaultPlan) -> _RunningProxy:
        handle = _RunningProxy(plan, upstream)
        proxies.append(handle)
        return handle

    yield make
    for handle in proxies:
        handle.stop()


def _storm_client(endpoint: str, **kwargs) -> Client:
    """A resilient client tuned for chaos tests: short socket timeout
    (a dropped frame costs one timeout), generous retry budget, and a
    breaker that will not trip mid-storm."""
    kwargs.setdefault("timeout", 2.0)
    kwargs.setdefault(
        "retry", RetryPolicy(attempts=8, base_delay_s=0.01, deadline_s=60.0)
    )
    kwargs.setdefault("breaker", CircuitBreaker(failure_threshold=1000))
    return Client(endpoint, **kwargs)


class TestChaosProxy:
    def test_zero_rate_plan_is_a_transparent_pipe(self, upstream, proxied):
        handle = proxied(NetFaultPlan(seed=1))
        with upstream.client() as direct:
            expected = direct.analyze(source=SOURCE, pair=0)
        with Client(handle.endpoint, timeout=5.0) as client:
            via_proxy = client.analyze(source=SOURCE, pair=0)
            health = client.health()
        assert via_proxy == expected
        assert health["status"] == "ok"
        assert handle.proxy.injection_log() == []
        assert handle.proxy.registry.get("netchaos.connections") == 1

    def test_connect_reset_is_a_transport_error(self, proxied):
        handle = proxied(NetFaultPlan(seed=1, reset_rate=1.0))
        with pytest.raises((TransportError, ConnectionError)):
            with Client(handle.endpoint, timeout=2.0) as client:
                client.health()
        assert (SITE_CONNECT, "0", RESET) in handle.proxy.injection_log()

    def test_torn_response_reaches_the_client_as_partial_bytes(self, proxied):
        # Pick a seed whose schedule leaves the request frame alone but
        # tears the response — peek makes the search exact, not flaky.
        seed = next(
            s
            for s in range(10_000)
            if (plan := NetFaultPlan(seed=s, torn_rate=0.5)).peek(
                SITE_REQUEST, 0, 0
            )
            is None
            and plan.peek(SITE_RESPONSE, 0, 0) == TORN
        )
        handle = proxied(NetFaultPlan(seed=seed, torn_rate=0.5))
        with Client(handle.endpoint, timeout=5.0) as client:
            with pytest.raises(TransportError) as excinfo:
                client.health()
        err = excinfo.value
        assert "torn frame" in err.detail
        assert err.partial is not None and not err.partial.endswith(b"\n")
        assert (SITE_RESPONSE, "0:0", TORN) in handle.proxy.injection_log()

    def test_partition_refuses_a_window_of_connects(self, proxied):
        handle = proxied(
            NetFaultPlan(seed=0, partition_rate=1.0, partition_conns=2)
        )
        # conn 0 opens the partition; conn 1 falls inside the window;
        # conn 2 would roll again (rate 1.0 keeps it partitioned too,
        # which is fine — the window accounting is what we check).
        for _ in range(2):
            with pytest.raises((TransportError, ConnectionError, OSError)):
                with Client(handle.endpoint, timeout=2.0) as client:
                    client.health()
        log = handle.proxy.injection_log()
        assert log[0] == (SITE_CONNECT, "0", PARTITION)
        assert log[1] == (SITE_CONNECT, "1", PARTITION)

    def test_resilient_client_recovers_bit_identical_answers(
        self, upstream, proxied
    ):
        plan = NetFaultPlan(
            seed=11,
            delay_rate=0.05,
            drop_rate=0.02,
            reset_rate=0.05,
            torn_rate=0.05,
            delay_s=0.01,
        )
        handle = proxied(plan)
        with upstream.client() as direct:
            expected = direct.analyze(source=SOURCE, pair=0)
        with _storm_client(handle.endpoint) as client:
            answers = [
                client.analyze(source=SOURCE, pair=0) for _ in range(30)
            ]
            reconnects = client.registry.get("client.reconnects")
        assert answers == [expected] * 30
        # The run must actually have been stormy, or this proves nothing.
        assert handle.proxy.injection_log(), "no faults injected"
        assert reconnects > 0, "chaos never forced a reconnect"

    def test_injection_log_is_exactly_the_peek_schedule(
        self, upstream, proxied
    ):
        plan = NetFaultPlan(
            seed=23, drop_rate=0.02, reset_rate=0.06, torn_rate=0.06, delay_s=0.01
        )
        handle = proxied(plan)
        with _storm_client(handle.endpoint) as client:
            for _ in range(15):
                client.health()
        log = handle.proxy.injection_log()
        assert log, "no faults injected"
        for site, key, kind in log:
            if site == SITE_CONNECT:
                conn, frame = int(key), None
                if kind == PARTITION and plan.peek(site, conn) != PARTITION:
                    continue  # a window refusal, not a fresh roll
            else:
                conn_text, frame_text = key.split(":")
                conn, frame = int(conn_text), int(frame_text)
            assert plan.peek(site, conn, frame) == kind, (site, key, kind)

    def test_chaotic_session_matches_a_clean_session(
        self, upstream, proxied
    ):
        from tests.test_serve_server import TestIncrementalSessions

        _, sources = TestIncrementalSessions._sources(
            None, seed=31, statements=6, arrays=3, edits=6
        )
        with upstream.client() as direct:
            sid = direct.open_session(source=sources[0])["session"]
            for source in sources[1:]:
                direct.update_source(sid, source)
            clean = direct.graph(sid)
        # Rates are modest on purpose: a journal replay must finish on
        # one connection, so its success probability per attempt is
        # (1 - fault_rate) ** journal_frames — keep that well above 1/2.
        plan = NetFaultPlan(
            seed=5, reset_rate=0.04, torn_rate=0.02, delay_rate=0.05, delay_s=0.01
        )
        handle = proxied(plan)
        with _storm_client(handle.endpoint) as client:
            opened = client.open_session(source=sources[0])
            chaos_sid = opened["session"]
            for source in sources[1:]:
                client.update_source(chaos_sid, source)
            stormy = client.graph(chaos_sid)
        assert handle.proxy.injection_log(), "no faults injected"
        assert stormy["edges"] == clean["edges"]
        assert stormy["dot"] == clean["dot"]


class TestUpstreamDeath:
    def test_upstream_vanishing_is_counted_and_aborted(self, proxied):
        # Point the proxy at a dead port: connects are accepted, then
        # aborted, and the upstream_unreachable counter records why.
        dead = socket.socket()
        dead.bind(("127.0.0.1", 0))
        port = dead.getsockname()[1]
        dead.close()
        proxy = ChaosProxy(NetFaultPlan(), "127.0.0.1", port)
        thread = threading.Thread(target=proxy.run, daemon=True)
        thread.start()
        assert proxy.started.wait(10)
        try:
            with pytest.raises((TransportError, ConnectionError, OSError)):
                with Client(
                    f"tcp://{proxy.bound_host}:{proxy.bound_port}", timeout=2.0
                ) as client:
                    client.health()
            assert proxy.registry.get("netchaos.upstream_unreachable") == 1
        finally:
            proxy.request_shutdown()
            thread.join(10)
