"""Tests for the cluster router (repro.serve.router) in-process.

The acceptance bar, exercised without subprocesses (the process-level
kill -9 chaos run lives in ``scripts/cluster_smoke.py``):

* answers through the router are **bit-identical** to the serial batch
  engine — serial ≡ 1-worker ≡ 8-worker on a 500-case fuzz corpus;
* protocol negotiation works in every direction: an old (v1) client
  against the router, a new (v2) client against a bare worker, and an
  unknown version gets the typed ``version_mismatch`` refusal; the
  router's health frame carries the ``cluster: true`` capability;
* a worker's SIGTERM drain (``shutting_down`` refusals) re-shards its
  ring segment and **replays** its queries — zero lost, still
  bit-identical;
* degraded (blown-deadline) verdicts bypass the wire fast lane and the
  memo on workers even when reached through the router — never cached,
  so never spilled/gossiped either;
* memo warmth gossips between workers sharing a spill directory;
* an empty ring yields an explicit ``overloaded`` error, not a hang.
"""

import json
import socket
import threading
import time

import pytest

from repro.api import DependenceReport
from repro.core.engine import PairQuery, analyze_batch
from repro.fuzz.generator import generate_cases
from repro.ir.serde import query_to_dict
from repro.serve import protocol
from repro.serve.client import CircuitBreaker, Client, RetryPolicy, ServeError
from repro.serve.router import ClusterRouter, RouterConfig
from repro.serve.server import DependenceServer, ServeConfig

from tests.test_serve_server import SOURCE, _RunningServer, _SlowServer


class _RunningRouter:
    """A ClusterRouter on a background thread, with its exit code."""

    def __init__(self, config: RouterConfig | None = None):
        if config is None:
            config = RouterConfig()
        config.announce = False
        config.install_signal_handlers = False
        self.router = ClusterRouter(config)
        self.exit_codes: list[int] = []
        self.thread = threading.Thread(
            target=lambda: self.exit_codes.append(self.router.run()),
            daemon=True,
        )
        self.thread.start()
        assert self.router.started.wait(10), "router did not start"

    def add(self, handle: _RunningServer, worker_id: str) -> None:
        self.router.add_worker(
            worker_id,
            handle.server.bound_host,
            handle.server.bound_port,
        )

    def client(self, **kwargs) -> Client:
        return Client(
            f"cluster://{self.router.bound_host}:{self.router.bound_port}",
            retry_for=5.0,
            **kwargs,
        )

    def stop(self) -> int:
        if self.thread.is_alive():
            self.router.request_shutdown()
        self.thread.join(15)
        assert not self.thread.is_alive(), "router did not drain"
        return self.exit_codes[0]


class _RunningCluster:
    """N in-process workers behind one in-process router."""

    def __init__(self, n_workers: int, worker_cls=DependenceServer, **cfg):
        self.workers = [
            _RunningServer(ServeConfig(announce=False, **cfg), cls=worker_cls)
            for _ in range(n_workers)
        ]
        self.router = _RunningRouter()
        for index, handle in enumerate(self.workers):
            self.router.add(handle, f"w{index}")

    def client(self, **kwargs) -> Client:
        return self.router.client(**kwargs)

    def stop(self) -> None:
        code = self.router.stop()
        assert code == 0
        for handle in self.workers:
            assert handle.stop() == 0


def _raw_call(host: str, port: int, line: bytes) -> dict:
    """One raw request line, one decoded response — no client sugar."""
    with socket.create_connection((host, port), timeout=30) as sock:
        stream = sock.makefile("rwb")
        stream.write(line)
        stream.flush()
        return json.loads(stream.readline())


# -- bit-identity ----------------------------------------------------------

N_FUZZ_CASES = 500


@pytest.fixture(scope="module")
def fuzz_workload():
    """500 fuzz queries plus the serial batch engine's wire answers."""
    cases = generate_cases(seed=7, iterations=N_FUZZ_CASES)
    queries = [
        PairQuery(case.ref1, case.nest1, case.ref2, case.nest2)
        for case in cases
    ]
    serial = analyze_batch(queries, jobs=1, want_directions=True)
    expected = [
        protocol.report_to_wire(
            DependenceReport.from_results(
                str(outcome.query.ref1),
                str(outcome.query.ref2),
                outcome.result,
                outcome.directions,
            )
        )
        for outcome in serial.outcomes
    ]
    calls = [
        (
            "analyze",
            {
                "query": query_to_dict(q.ref1, q.nest1, q.ref2, q.nest2),
                "directions": True,
            },
        )
        for q in queries
    ]
    return calls, expected


class TestBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 8])
    def test_serial_equals_cluster(self, fuzz_workload, n_workers):
        calls, expected = fuzz_workload
        cluster = _RunningCluster(n_workers, queue_limit=50_000)
        try:
            with cluster.client(timeout=300.0) as client:
                got = client.call_many(calls)
        finally:
            cluster.stop()
        mismatches = [
            index
            for index, (have, want) in enumerate(zip(got, expected))
            if have != want
        ]
        assert not mismatches, (
            f"{len(mismatches)}/{len(calls)} answers diverged via "
            f"{n_workers} worker(s); first at {mismatches[0]}: "
            f"{got[mismatches[0]]!r} != {expected[mismatches[0]]!r}"
        )

    def test_repeat_pass_is_warm_and_still_identical(self, fuzz_workload):
        calls, expected = fuzz_workload
        cluster = _RunningCluster(2, queue_limit=50_000)
        try:
            with cluster.client(timeout=300.0) as client:
                cold = client.call_many(calls[:100])
                warm = client.call_many(calls[:100])
        finally:
            cluster.stop()
        assert cold == expected[:100]
        assert warm == expected[:100]


# -- protocol negotiation --------------------------------------------------

class TestNegotiation:
    def test_router_health_advertises_the_cluster_capability(self):
        cluster = _RunningCluster(2)
        try:
            with cluster.client() as client:
                health = client.health()
        finally:
            cluster.stop()
        assert health["cluster"] is True
        assert health["protocol"] == protocol.PROTOCOL_VERSION
        assert health["ring"] == ["w0", "w1"]

    def test_old_v1_client_speaks_to_the_router(self):
        """A pre-cluster client pins v1; the router must serve it."""
        cluster = _RunningCluster(1)
        try:
            response = _raw_call(
                cluster.router.router.bound_host,
                cluster.router.router.bound_port,
                protocol.encode_request(
                    "analyze",
                    {"source": SOURCE, "pair": 0},
                    request_id=7,
                    version=1,
                ),
            )
        finally:
            cluster.stop()
        assert response["ok"] is True
        assert response["id"] == 7
        assert response["result"]["dependent"] is True

    def test_new_v2_client_speaks_to_a_bare_worker(self):
        handle = _RunningServer()
        try:
            response = _raw_call(
                handle.server.bound_host,
                handle.server.bound_port,
                protocol.encode_request(
                    "health", {}, request_id=1, version=2
                ),
            )
        finally:
            handle.stop()
        assert response["ok"] is True
        # The capability field old clients ignore and the unified
        # client's cluster:// guard keys on:
        assert response["result"]["cluster"] is False

    def test_unknown_version_gets_the_typed_refusal_from_both(self):
        cluster = _RunningCluster(1)
        try:
            targets = [
                (
                    cluster.router.router.bound_host,
                    cluster.router.router.bound_port,
                ),
                (
                    cluster.workers[0].server.bound_host,
                    cluster.workers[0].server.bound_port,
                ),
            ]
            for host, port in targets:
                response = _raw_call(
                    host,
                    port,
                    protocol.encode_request(
                        "health", {}, request_id=1, version=99
                    ),
                )
                assert response["ok"] is False
                assert (
                    response["error"]["code"] == protocol.ErrorCode.VERSION
                )
                span = (
                    f"{protocol.MIN_PROTOCOL_VERSION}.."
                    f"{protocol.PROTOCOL_VERSION}"
                )
                assert span in response["error"]["message"]
        finally:
            cluster.stop()


# -- drain / replay --------------------------------------------------------

class TestDrainReplay:
    def test_worker_drain_mid_load_loses_zero_queries(self):
        """SIGTERM-drain one of two workers while pipelined cold load
        is in flight: every query still gets an answer — the router
        re-shards the drained segment and replays its debt — and a
        warm re-run over the surviving worker returns the identical
        bytes."""
        sources = [
            SOURCE.replace("a[i - 1]", f"a[i - {k}]") for k in range(1, 25)
        ]
        calls = [
            ("analyze", {"source": source, "pair": 0}) for source in sources
        ]
        cluster = _RunningCluster(2, worker_cls=_SlowServer)
        try:
            with cluster.client(timeout=120.0) as client:
                results: list = []
                loader = threading.Thread(
                    target=lambda: results.extend(client.call_many(calls))
                )
                loader.start()
                time.sleep(_SlowServer.DELAY)  # load is in flight now
                cluster.workers[0].server.request_shutdown()
                loader.join(120)
                assert not loader.is_alive(), "load never finished"
                verify = client.call_many(calls)  # only w1 remains
        finally:
            cluster.workers[0].stop()
            cluster.router.stop()
            cluster.workers[1].stop()
        assert len(results) == len(calls), "queries were lost"
        assert all(isinstance(r, dict) for r in results), next(
            r for r in results if not isinstance(r, dict)
        )
        assert results == verify, "replayed answers diverged"
        ejected = cluster.router.router.registry.to_dict()["families"].get(
            "cluster.worker_ejected", {}
        )
        assert ejected, "the drained worker never left the ring"

    def test_empty_ring_is_an_explicit_overloaded_error(self):
        handle = _RunningRouter(RouterConfig(reroute_wait_s=0.2))
        try:
            with handle.client() as client:
                with pytest.raises(ServeError) as excinfo:
                    client.analyze(source=SOURCE, pair=0)
        finally:
            handle.stop()
        assert excinfo.value.code == protocol.ErrorCode.OVERLOADED

    def test_draining_router_refuses_analysis_with_shutting_down(self):
        cluster = _RunningCluster(1)
        try:
            with cluster.client() as client:
                client.shutdown()
                with pytest.raises(ServeError) as excinfo:
                    client.analyze(source=SOURCE, pair=0)
            assert excinfo.value.code == protocol.ErrorCode.SHUTTING_DOWN
        finally:
            cluster.stop()


# -- the degraded invariant ------------------------------------------------

class _SlowWorkServer(DependenceServer):
    """Pads the analysis callable itself so a deadline reliably blows
    (mirrors tests/test_serve_server.py)."""

    PAD = 0.5

    async def _with_deadline(self, work, degrade):
        import time as _time

        def padded():
            _time.sleep(self.PAD)
            return work()

        return await super()._with_deadline(padded, degrade)


class TestDegradedInvariant:
    def test_degraded_reports_bypass_fastlane_and_memo_via_router(self):
        """The single-daemon invariant (PR 5) holds through the router:
        a blown-deadline verdict is recomputed every time — never
        stored in the wire fast lane, the memo table, or (therefore)
        any spill image a peer could absorb."""
        cluster = _RunningCluster(
            2, worker_cls=_SlowWorkServer, deadline_ms=20.0
        )
        try:
            with cluster.client(timeout=120.0) as client:
                first = client.analyze(source=SOURCE, pair=0)
                second = client.analyze(source=SOURCE, pair=0)
                stats = client.stats()
        finally:
            cluster.stop()
        assert first["degraded"] is True
        assert second == first, "degraded answers must stay deterministic"
        degraded_count = 0
        for worker_id, worker_stats in stats["workers"].items():
            assert worker_stats["server"]["fastlane_entries"] == 0, worker_id
            assert worker_stats["cache"]["entries"] == 0, worker_id
            degraded_count += (
                worker_stats["registry"]["scalars"].get("serve.degraded", 0)
            )
        # Both queries were recomputed (same home worker both times —
        # consistent hashing — so both increments land on one worker).
        assert degraded_count >= 2


# -- warmth gossip ---------------------------------------------------------

class TestWarmthGossip:
    def test_peers_absorb_each_others_spill_images(self, tmp_path):
        spill = str(tmp_path / "spill")
        first = _RunningServer(
            ServeConfig(
                announce=False,
                worker_id="a",
                spill_dir=spill,
                spill_interval_s=0.1,
            )
        )
        second = _RunningServer(
            ServeConfig(
                announce=False,
                worker_id="b",
                spill_dir=spill,
                spill_interval_s=0.1,
            )
        )
        try:
            with first.client() as client:
                report = client.analyze(source=SOURCE, pair=0)
                assert report["dependent"] is True
                assert client.health()["cache_entries"] > 0
            deadline = time.monotonic() + 15.0
            warmed = 0
            while time.monotonic() < deadline:
                with second.client() as client:
                    warmed = client.health()["cache_entries"]
                if warmed:
                    break
                time.sleep(0.1)
            assert warmed > 0, "peer never absorbed the spill image"
        finally:
            assert first.stop() == 0
            assert second.stop() == 0


class TestDurableSessionsThroughRouter:
    """Incremental sessions ride the router by **pinning**: the
    client-minted session id is the shard key for every frame of the
    session, so one worker owns it; when that worker dies the id
    re-homes and the client's journal replay rebuilds the session —
    bit-identical, because the incremental engine guarantees delta ≡
    full re-analysis of the final source."""

    def _sources(self, seed=21, statements=8, arrays=4, edits=3):
        import random

        from repro.fuzz.edits import mutate, storm_program
        from repro.lang.unparse import program_to_source

        rng = random.Random(seed)
        program = storm_program(seed, statements=statements, arrays=arrays)
        versions = [program]
        for _ in range(edits):
            program, _ = mutate(program, rng, arrays=arrays)
            versions.append(program)
        return versions, [program_to_source(p) for p in versions]

    def test_health_capability_flags(self):
        cluster = _RunningCluster(1)
        try:
            with cluster.client() as client:
                assert client.health()["sessions"] is True
            with cluster.workers[0].client() as client:
                assert client.health()["sessions"] is True
        finally:
            cluster.stop()

    def test_session_ops_without_an_id_are_refused(self):
        """Server-allocated per-connection ids cannot survive a
        failover, so the router requires the durable client-minted
        spelling (the Client sends one automatically)."""
        cluster = _RunningCluster(1)
        try:
            with cluster.client() as client:
                for op, params in (
                    ("open_session", {}),
                    ("update_source", {"session": "", "source": SOURCE}),
                    ("graph", {}),
                ):
                    with pytest.raises(ServeError) as err:
                        client.call(op, params)
                    assert err.value.code == protocol.ErrorCode.BAD_REQUEST
                    assert "session id" in str(err.value)
        finally:
            cluster.stop()

    def test_session_roundtrip_through_router(self):
        from repro.core.incremental import full_graph

        versions, sources = self._sources()
        cluster = _RunningCluster(2)
        try:
            with cluster.client() as client:
                opened = client.open_session(source=sources[0])
                sid = opened["session"]
                assert sid.startswith("c")  # client-minted, not s1/s2
                for source in sources[1:]:
                    summary = client.update_source(sid, source)
                    assert summary["degraded"] is False
                result = client.graph(sid)
        finally:
            cluster.stop()
        reference = full_graph(versions[-1])
        assert result["edges"] == reference.edge_dicts()
        assert result["dot"] == reference.to_dot()

    def test_worker_failover_replays_the_journal(self):
        """Drain the worker that owns the session mid-stream: the next
        update gets ``unknown_session`` from the re-homed ring, the
        client replays its journal, and the final graph is
        bit-identical to an uninterrupted session's."""
        from repro.core.incremental import full_graph

        versions, sources = self._sources(edits=5)
        cluster = _RunningCluster(2)
        try:
            with cluster.client(retry=RetryPolicy(seed=3)) as client:
                sid = client.open_session(source=sources[0])["session"]
                client.update_source(sid, sources[1])
                # The pin means exactly one worker ever opened it.
                owners = [
                    index
                    for index, handle in enumerate(cluster.workers)
                    if handle.server.registry.get("serve.sessions.opened")
                ]
                assert len(owners) == 1, owners
                cluster.workers[owners[0]].server.request_shutdown()
                for source in sources[2:]:
                    summary = client.update_source(sid, source)
                    assert summary["degraded"] is False
                result = client.graph(sid)
                assert client.registry.get("client.session_replays") >= 1
            survivor = cluster.workers[1 - owners[0]]
            assert survivor.server.registry.get("serve.sessions.opened") >= 1
        finally:
            for handle in cluster.workers:
                handle.server.request_shutdown()
            cluster.router.stop()
            for handle in cluster.workers:
                handle.stop()
        reference = full_graph(versions[-1])
        assert result["edges"] == reference.edge_dicts()
        assert result["dot"] == reference.to_dot()

    def test_stale_epoch_never_clobbers_the_rebuilt_session(self):
        """A pre-failover ``open_session`` frame arriving late (epoch
        0) must not replace the replayed incarnation (epoch 1)."""
        cluster = _RunningCluster(1)
        try:
            with cluster.client() as client:
                sources = self._sources()[1]
                sid = client.open_session(
                    source=sources[0], session_id="pin-1"
                )["session"]
                assert sid == "pin-1"
                # The replayed incarnation lands with a higher epoch...
                fresh = client.call(
                    "open_session",
                    {"session_id": "pin-1", "epoch": 1, "source": sources[1]},
                )
                assert fresh["epoch"] == 1
                # ...so the zombie's frame is rejected as stale.
                with pytest.raises(ServeError) as err:
                    client.call(
                        "open_session",
                        {"session_id": "pin-1", "epoch": 0, "source": sources[0]},
                    )
                assert err.value.code == protocol.ErrorCode.BAD_REQUEST
                assert "stale epoch" in str(err.value)
        finally:
            cluster.stop()


class TestNetchaosStorm:
    """The acceptance storm, in-process: the 500-query fuzz workload
    through a seeded chaos proxy in front of a 4-worker router, with
    one worker lost mid-storm.  Zero lost queries, bit-identical
    answers — the resilient client absorbs every injected fault."""

    CHUNK = 25

    def test_storm_with_worker_loss_is_bit_identical(self, fuzz_workload):
        from repro.robust.netchaos import ChaosProxy, NetFaultPlan

        calls, expected = fuzz_workload
        cluster = _RunningCluster(4)
        # Rates are calibrated to the retry budget: a chunk of 25 calls
        # is ~50 frames per round, so the per-round survival probability
        # at ~1.3% fatal faults per frame stays above one half and every
        # failed round still banks the answers that arrived before the
        # cut.  drop_rate stays tiny because every dropped frame costs
        # the client a full socket timeout before it can retry.
        plan = NetFaultPlan(
            seed=13,
            delay_rate=0.02,
            drop_rate=0.001,
            reset_rate=0.006,
            torn_rate=0.006,
            delay_s=0.005,
        )
        proxy = ChaosProxy(
            plan,
            cluster.router.router.bound_host,
            cluster.router.router.bound_port,
        )
        proxy_thread = threading.Thread(target=proxy.run, daemon=True)
        proxy_thread.start()
        assert proxy.started.wait(10), "proxy did not start"
        try:
            client = Client(
                f"tcp://{proxy.bound_host}:{proxy.bound_port}",
                timeout=2.0,
                retry=RetryPolicy(
                    attempts=12, base_delay_s=0.01, deadline_s=120.0
                ),
                breaker=CircuitBreaker(failure_threshold=10_000),
            )
            results = []
            with client:
                for start in range(0, len(calls), self.CHUNK):
                    if start == len(calls) // 2:
                        # Mid-storm: one worker drains away.  The router
                        # must eject it and re-home its shard while the
                        # chaos proxy keeps mangling the client link.
                        cluster.workers[0].server.request_shutdown()
                    results.extend(
                        client.call_many(calls[start : start + self.CHUNK])
                    )
                reconnects = client.registry.get("client.reconnects")
            assert len(results) == len(expected)
            mismatches = [
                index
                for index, (got, want) in enumerate(zip(results, expected))
                if got != want
            ]
            assert mismatches == [], f"{len(mismatches)} answers diverged"
            # The run must actually have been stormy, or it proves nothing.
            assert proxy.injection_log(), "no faults injected"
            assert reconnects > 0, "chaos never forced a reconnect"
        finally:
            proxy.request_shutdown()
            proxy_thread.join(10)
            cluster.stop()
