"""Flat-array hot path == object path, property-tested at scale.

The cascade can run on two representations of the same constraint
system: the array-backed :class:`repro.system.flat.FlatSystem` (the
default hot path) and the original per-constraint object
:class:`~repro.system.constraints.ConstraintSystem` (the reference
path, forced with ``use_flat=False``).  These tests drive both
analyzers over the deterministic fuzz corpus — 500 cases on each of the
five tiers — and require bitwise-equal answers: verdicts, deciding
tests, exactness, distances and direction-vector sets.

Also covered here: the byte memo keys are exactly the zigzag-varint
encoding of the published integer key vectors (so the two keyspaces
cannot drift), and the sharded batch engine still produces
bit-identical outcomes to the serial engine with the flat path on.
"""

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer, encode_key
from repro.fuzz.generator import TIERS, generate_case
from repro.system.depsystem import build_problem
from repro.system.flat import FlatSystem

SEED = 20260807
N_CASES = 500


def _answers(analyzer, case):
    plain = analyzer.analyze(case.ref1, case.nest1, case.ref2, case.nest2)
    vectors = analyzer.directions(
        case.ref1, case.nest1, case.ref2, case.nest2
    )
    return (
        plain.dependent,
        plain.decided_by,
        plain.exact,
        plain.distance,
        vectors.exact,
        frozenset(vectors.vectors),
        vectors.n_common,
    )


@pytest.mark.parametrize("tier", TIERS)
def test_flat_path_matches_object_path(tier):
    """Same verdicts/directions on both representations, 500 cases/tier.

    Both analyzers memoize, so the equivalence also covers the
    warm-path interplay (memo hits must agree with fresh computation
    on either representation).
    """
    flat = DependenceAnalyzer(memoizer=Memoizer(), use_flat=True)
    obj = DependenceAnalyzer(memoizer=Memoizer(), use_flat=False)
    for index in range(N_CASES):
        case = generate_case(SEED, index, tier)
        assert _answers(flat, case) == _answers(obj, case), (
            f"flat/object divergence at tier={tier} index={index}"
        )


@pytest.mark.parametrize("tier", TIERS)
def test_byte_keys_encode_the_key_vectors(tier):
    """``key_bytes`` is exactly ``encode_key(key_vector)`` — per tier.

    The memo keyspace must not depend on which accessor built the key;
    the byte form is the varint encoding of the published integer
    vector, for both the with-bounds and no-bounds tables.
    """
    for index in range(0, N_CASES, 5):
        case = generate_case(SEED, index, tier)
        problem = build_problem(case.ref1, case.nest1, case.ref2, case.nest2)
        for with_bounds in (True, False):
            vector = problem.key_vector(with_bounds=with_bounds)
            data = problem.key_bytes(with_bounds=with_bounds)
            assert data == encode_key(vector)
        reduced, _ = problem.eliminate_unused()
        assert reduced.key_bytes(True) == encode_key(reduced.key_vector(True))


@pytest.mark.parametrize("tier", TIERS)
def test_flat_system_mirrors_object_system(tier):
    """Structural round trip: FlatSystem answers == ConstraintSystem's."""
    for index in range(0, N_CASES, 5):
        case = generate_case(SEED, index, tier)
        problem = build_problem(case.ref1, case.nest1, case.ref2, case.nest2)
        system = problem.bounds
        flat = FlatSystem.from_system(system)
        assert flat.n_rows == len(system.constraints)
        assert list(flat.constraints) == list(system.constraints)
        assert flat.used_variables() == system.used_variables()
        assert (
            flat.max_vars_per_constraint() == system.max_vars_per_constraint()
        )
        assert flat.has_contradiction() == system.has_contradiction()
        assert (
            flat.single_variable_intervals()
            == system.single_variable_intervals()
        )
        back = flat.to_system()
        assert back.names == system.names
        assert back.constraints == system.constraints


def test_serial_matches_sharded_with_flat_path():
    """The sharded engine stays bitwise-equal to serial on the flat path."""
    from repro.core.engine import analyze_batch, queries_from_suite
    from repro.perfect import load_suite

    queries = queries_from_suite(load_suite(include_symbolic=True, scale=0.02))

    def canon(report):
        out = []
        for outcome in report.outcomes:
            result, directions = outcome.result, outcome.directions
            out.append(
                (
                    str(outcome.query.ref1),
                    str(outcome.query.ref2),
                    result.dependent,
                    result.decided_by,
                    result.exact,
                    result.distance,
                    sorted(directions.vectors) if directions else None,
                )
            )
        return out

    serial = analyze_batch(queries, jobs=1, want_directions=True)
    sharded = analyze_batch(queries, jobs=3, want_directions=True)
    assert canon(serial) == canon(sharded)
