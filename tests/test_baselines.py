"""Tests for the inexact baselines: soundness and known imprecision."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BaselineAnalyzer,
    banerjee_independent,
    constant_ranges,
    simple_gcd_independent,
)
from repro.core.analyzer import DependenceAnalyzer
from repro.ir import builder as B
from repro.oracle.enumerate import oracle_dependent

coef = st.integers(min_value=-3, max_value=3)
shift = st.integers(min_value=-10, max_value=10)
bound = st.integers(min_value=1, max_value=8)


class TestSimpleGcd:
    def test_parity_independence(self):
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i") * 2], write=True)
        r = B.ref("a", [B.v("i") * 2 + 1])
        assert simple_gcd_independent(w, nest, r, nest)

    def test_cannot_use_bounds(self):
        # a[i] vs a[i+100]: coefficients are unit, gcd divides anything:
        # the simple GCD test misses what the bounds make obvious.
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") + 100])
        assert not simple_gcd_independent(w, nest, r, nest)

    @given(coef, shift, coef, shift, bound)
    @settings(max_examples=200, deadline=None)
    def test_sound(self, a1, c1, a2, c2, n):
        """Never claims independence when a dependence exists."""
        nest = B.nest(("i", 1, n))
        w = B.ref("a", [B.v("i") * a1 + c1], write=True)
        r = B.ref("a", [B.v("i") * a2 + c2])
        if simple_gcd_independent(w, nest, r, nest):
            assert not oracle_dependent(w, nest, r, nest)


class TestBanerjee:
    def test_bounds_independence(self):
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") + 100])
        assert banerjee_independent(w, nest, r, nest)

    def test_misses_coupled_subscripts(self):
        # The known blind spot: per-dimension reasoning cannot see that
        # a[i][i] vs a[j][j+1] requires i = j and i = j + 1 at once.
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        w = B.ref("a", [B.v("i"), B.v("i")], write=True)
        r = B.ref("a", [B.v("j"), B.v("j") + 1])
        assert not banerjee_independent(w, nest, r, nest)
        # ... while the exact cascade proves independence.
        result = DependenceAnalyzer().analyze(w, nest, r, nest)
        assert result.independent

    def test_direction_constrained(self):
        # a[i] = a[i] has no '<' dependence.
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i")])
        assert banerjee_independent(w, nest, r, nest, ("<",))
        assert not banerjee_independent(w, nest, r, nest, ("=",))

    def test_trapezoid_widened(self):
        nest = B.nest(("i", 1, 10), ("j", 1, B.v("i")))
        ranges = constant_ranges(nest)
        assert ranges["i"] == (1, 10)
        assert ranges["j"] == (1, 10)  # widened to the outer extreme

    def test_symbolic_bound_unbounded(self):
        nest = B.nest(("i", 1, B.v("n")))
        ranges = constant_ranges(nest)
        assert ranges["i"][1] == float("inf")

    def test_symbolic_direction_refutation(self):
        # a[i] vs a[i] under '<' is refutable even with symbolic bounds.
        nest = B.nest(("i", 1, B.v("n")))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i")])
        assert banerjee_independent(w, nest, r, nest, ("<",))

    @given(coef, shift, coef, shift, bound, st.sampled_from(["<", "=", ">", "*"]))
    @settings(max_examples=300, deadline=None)
    def test_sound_under_directions(self, a1, c1, a2, c2, n, psi):
        nest = B.nest(("i", 1, n))
        w = B.ref("a", [B.v("i") * a1 + c1], write=True)
        r = B.ref("a", [B.v("i") * a2 + c2])
        if not banerjee_independent(w, nest, r, nest, (psi,)):
            return
        # claimed independent under psi: oracle must agree
        from repro.oracle.enumerate import oracle_direction_vectors

        truth = oracle_direction_vectors(w, nest, r, nest)
        if psi == "*":
            assert not truth
        else:
            assert psi not in {v[0] for v in truth}


class TestBaselineAnalyzer:
    def test_misses_what_exact_finds(self):
        """The motivating gap: a pair independent only through coupling."""
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        w = B.ref("a", [B.v("i"), B.v("i")], write=True)
        r = B.ref("a", [B.v("j"), B.v("j") + 1])
        baseline = BaselineAnalyzer()
        exact = DependenceAnalyzer()
        assert baseline.analyze(w, nest, r, nest) is True  # assumed dep
        assert exact.analyze(w, nest, r, nest).independent

    def test_direction_vectors_over_reported(self):
        # a[i+1] = a[i]: exact answer is the single vector (<).
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        baseline = BaselineAnalyzer()
        result = baseline.directions(w, nest, r, nest)
        exact = DependenceAnalyzer().directions(w, nest, r, nest)
        assert exact.elementary_vectors() == {("<",)}
        # Banerjee *can* get this one right; over-reporting appears on
        # harder shapes, but never under-reporting:
        assert result.count_elementary() >= 1
        for vector in exact.elementary_vectors():
            assert any(
                _matches(vector, coarse) for coarse in result.vectors
            )

    def test_unused_variable_star(self):
        nest = B.nest(("k", 1, 10), ("i", 1, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") - 1])
        result = BaselineAnalyzer().directions(w, nest, r, nest)
        assert all(vec[0] == "*" for vec in result.vectors)

    @given(coef, shift, coef, shift, bound)
    @settings(max_examples=200, deadline=None)
    def test_never_misses_dependences(self, a1, c1, a2, c2, n):
        """Soundness of the whole baseline pipeline (1-D)."""
        nest = B.nest(("i", 1, n))
        w = B.ref("a", [B.v("i") * a1 + c1], write=True)
        r = B.ref("a", [B.v("i") * a2 + c2])
        dependent = BaselineAnalyzer().analyze(w, nest, r, nest)
        if not dependent:
            assert not oracle_dependent(w, nest, r, nest)

    @given(coef, coef, shift, coef, coef, shift, st.integers(1, 6))
    @settings(max_examples=200, deadline=None)
    def test_baseline_superset_of_true_directions(
        self, a, b, c, d, e, f, n
    ):
        """Every *true* direction vector survives in the baseline set."""
        from repro.oracle.enumerate import oracle_direction_vectors

        nest = B.nest(("i", 1, n), ("j", 1, n))
        ref1 = B.ref("a", [B.v("i") * a + B.v("j") * b + c], write=True)
        ref2 = B.ref("a", [B.v("i") * d + B.v("j") * e + f])
        baseline = BaselineAnalyzer().directions(ref1, nest, ref2, nest)
        truth = oracle_direction_vectors(ref1, nest, ref2, nest)
        for vector in truth:
            assert any(
                _matches(vector, coarse) for coarse in baseline.vectors
            ), f"baseline dropped true vector {vector}"


def _matches(elementary: tuple[str, ...], coarse: tuple[str, ...]) -> bool:
    return all(c == "*" or c == e for e, c in zip(elementary, coarse))
