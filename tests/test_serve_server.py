"""Tests for the dependence daemon (repro.serve.server + client).

Covers the tentpole acceptance criteria in-process:

* concurrent clients receive answers bit-identical to the serial batch
  engine's, warm or cold;
* a query exceeding its deadline degrades to the conservative flagged
  verdict (and the enumeration oracle confirms conservativeness);
* saturation produces explicit backpressure errors, not queue collapse;
* shutdown drains in-flight work and the server exits 0.

(The subprocess-level SIGTERM drain is exercised by
``scripts/serve_smoke.py`` in CI.)
"""

import asyncio
import itertools
import json
import socket
import threading

import pytest

from repro.api import DependenceReport
from repro.core.engine import analyze_batch, queries_from_suite
from repro.ir.serde import query_to_dict
from repro.oracle.enumerate import oracle_direction_vectors
from repro.perfect import load_suite
from repro.serve import protocol
from repro.serve.client import ServeClient, ServeError
from repro.serve.server import DependenceServer, ServeConfig

SOURCE = """
for i = 2 to 10 do
  for j = 1 to 10 do
    a[i][j] = a[i - 1][j]
  end
end
"""


class _RunningServer:
    """A DependenceServer on a background thread, with its exit code."""

    def __init__(self, config: ServeConfig | None = None, cls=DependenceServer):
        if config is None:
            config = ServeConfig(announce=False)
        config.announce = False
        self.server = cls(config)
        self.exit_codes: list[int] = []
        self.thread = threading.Thread(
            target=lambda: self.exit_codes.append(self.server.run()),
            daemon=True,
        )
        self.thread.start()
        assert self.server.started.wait(10), "server did not start"

    def client(self, **kwargs) -> ServeClient:
        return ServeClient.connect(
            self.server.bound_host,
            self.server.bound_port,
            retry_for=5.0,
            **kwargs,
        )

    def stop(self) -> int:
        if self.thread.is_alive():
            self.server.request_shutdown()
        self.thread.join(15)
        assert not self.thread.is_alive(), "server did not drain"
        return self.exit_codes[0]


@pytest.fixture
def running():
    handle = _RunningServer()
    yield handle
    handle.stop()


class _SlowServer(DependenceServer):
    """Holds every analysis op for a beat: makes saturation/coalescing
    windows deterministic instead of racing the analyzer's speed."""

    DELAY = 0.3

    async def _run_analysis_op(
        self, request, session, explain_lock, inc_sessions
    ):
        await asyncio.sleep(self.DELAY)
        return await super()._run_analysis_op(
            request, session, explain_lock, inc_sessions
        )


class TestBasicOps:
    def test_health(self, running):
        with running.client() as client:
            health = client.health()
        assert health["status"] == "ok"
        assert health["protocol"] == protocol.PROTOCOL_VERSION

    def test_analyze_source(self, running):
        with running.client() as client:
            report = client.analyze(source=SOURCE, pair=0)
        assert report["dependent"] is True
        assert report["degraded"] is False
        assert report["directions"] == [["<", "="]]
        assert report["distance"] == [1, 0]

    def test_explain(self, running):
        with running.client() as client:
            result = client.explain(source=SOURCE, pair=0)
        assert result["report"]["dependent"] is True
        assert result["n_events"] > 0
        assert "svpc" in result["trace"]

    def test_analyze_program(self, running):
        with running.client() as client:
            result = client.analyze_program(SOURCE)
        assert len(result["pairs"]) == 1
        assert result["pairs"][0]["dependent"] is True
        assert result["summary"]["queries"] == 1

    def test_stats_exposes_cache_and_requests(self, running):
        with running.client() as client:
            client.analyze(source=SOURCE, pair=0)
            stats = client.stats()
        assert stats["cache"]["entries"] > 0
        assert stats["registry"]["families"]["serve.requests"]["analyze"] == 1
        assert stats["server"]["draining"] is False

    def test_bad_pair_index(self, running):
        with running.client() as client:
            with pytest.raises(ServeError) as exc:
                client.analyze(source=SOURCE, pair=99)
        assert exc.value.code == protocol.ErrorCode.BAD_REQUEST

    def test_bad_source(self, running):
        with running.client() as client:
            with pytest.raises(ServeError) as exc:
                client.analyze(source="for broken (((")
        assert exc.value.code == protocol.ErrorCode.SOURCE

    def test_missing_params(self, running):
        with running.client() as client:
            with pytest.raises(ServeError) as exc:
                client.call("analyze", {})
        assert exc.value.code == protocol.ErrorCode.BAD_REQUEST


class TestWireErrors:
    def _raw(self, running, payload: bytes) -> dict:
        with socket.create_connection(
            (running.server.bound_host, running.server.bound_port), timeout=10
        ) as sock:
            handle = sock.makefile("rwb")
            handle.write(payload)
            handle.flush()
            return json.loads(handle.readline())

    def test_garbage_line_is_parse_error(self, running):
        blob = self._raw(running, b"this is not json\n")
        assert blob["ok"] is False
        assert blob["error"]["code"] == protocol.ErrorCode.PARSE

    def test_unknown_op_is_unsupported(self, running):
        line = json.dumps({"v": 1, "id": 5, "op": "frobnicate"}).encode()
        blob = self._raw(running, line + b"\n")
        assert blob["error"]["code"] == protocol.ErrorCode.UNSUPPORTED
        assert blob["id"] == 5

    def test_version_mismatch(self, running):
        line = json.dumps({"v": 99, "id": 6, "op": "health"}).encode()
        blob = self._raw(running, line + b"\n")
        assert blob["error"]["code"] == protocol.ErrorCode.VERSION
        assert blob["id"] == 6

    def test_server_survives_bad_lines(self, running):
        self._raw(running, b"garbage\n")
        with running.client() as client:
            assert client.health()["status"] == "ok"


class TestPipelining:
    def test_call_many_matches_by_id(self, running):
        with running.client() as client:
            results = client.call_many(
                [
                    ("analyze", {"source": SOURCE, "pair": 0}),
                    ("health", {}),
                    ("analyze", {"source": SOURCE, "pair": 0}),
                ]
            )
        assert results[0]["dependent"] is True
        assert results[1]["status"] == "ok"
        assert results[2] == results[0]

    def test_errors_do_not_mask_siblings(self, running):
        with running.client() as client:
            results = client.call_many(
                [
                    ("analyze", {}),  # bad request
                    ("analyze", {"source": SOURCE, "pair": 0}),
                ]
            )
        assert isinstance(results[0], ServeError)
        assert results[1]["dependent"] is True


class TestBitIdenticalServing:
    """The headline criterion: concurrent clients == serial engine."""

    N_CLIENTS = 8

    @pytest.fixture(scope="class")
    def workload(self):
        queries = queries_from_suite(
            load_suite(include_symbolic=True, scale=0.02)
        )
        serial = analyze_batch(queries, jobs=1, want_directions=True)
        expected = [
            protocol.report_to_wire(
                DependenceReport.from_results(
                    str(outcome.query.ref1),
                    str(outcome.query.ref2),
                    outcome.result,
                    outcome.directions,
                )
            )
            for outcome in serial.outcomes
        ]
        calls = [
            (
                "analyze",
                {
                    "query": query_to_dict(
                        q.ref1, q.nest1, q.ref2, q.nest2
                    ),
                    "directions": True,
                },
            )
            for q in queries
        ]
        return calls, expected

    @pytest.fixture
    def deep_server(self):
        # Fully pipelined clients put their whole stream in flight at
        # once; a deep queue keeps backpressure out of this test (it
        # has its own, in TestBackpressure).
        handle = _RunningServer(
            ServeConfig(announce=False, queue_limit=50_000)
        )
        yield handle
        handle.stop()

    def test_eight_concurrent_clients_bit_identical(
        self, deep_server, workload
    ):
        calls, expected = workload
        failures: list[str] = []

        def worker(client_index: int):
            try:
                with deep_server.client(timeout=120.0) as client:
                    results = client.call_many(calls)
                for i, (got, want) in enumerate(zip(results, expected)):
                    if got != want:
                        failures.append(
                            f"client {client_index} query {i}: "
                            f"{got!r} != {want!r}"
                        )
                        return
            except Exception as err:  # pragma: no cover
                failures.append(f"client {client_index}: {err!r}")

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(self.N_CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(300)
        assert not failures, failures[0]

    def test_warm_repeat_is_bit_identical_and_cached(
        self, deep_server, workload
    ):
        calls, expected = workload
        with deep_server.client(timeout=120.0) as client:
            cold = client.call_many(calls)
            warm = client.call_many(calls)
            stats = client.stats()
        assert cold == expected
        assert warm == expected
        table = stats["cache"]["with_bounds"]
        assert table["hits"] > 0


class _SlowWorkServer(DependenceServer):
    """Pads every analysis work unit with a blocking sleep, standing in
    for a genuinely expensive query (which would release the GIL the
    same way and let the deadline timer fire)."""

    PAD = 0.5

    async def _with_deadline(self, work, degrade):
        import time as _time

        def padded():
            _time.sleep(self.PAD)
            return work()

        return await super()._with_deadline(padded, degrade)


class TestDeadlineDegradation:
    def test_blown_deadline_degrades_conservatively(self):
        handle = _RunningServer(
            ServeConfig(announce=False, deadline_ms=20.0),
            cls=_SlowWorkServer,
        )
        try:
            with handle.client() as client:
                report = client.analyze(source=SOURCE, pair=0)
                stats = client.stats()
        finally:
            handle.stop()
        # The degraded verdict: dependent, all-* directions, flagged.
        assert report["degraded"] is True
        assert report["dependent"] is True
        assert report["exact"] is False
        assert report["decided_by"] == "deadline"
        assert report["directions"] == [["*", "*"]]
        assert stats["registry"]["scalars"]["serve.degraded"] >= 1

    def test_oracle_confirms_conservativeness(self):
        """Every true direction vector is covered by the degraded
        all-wildcard answer: degradation over-approximates, never
        drops a dependence."""
        from repro.opt import compile_source
        from repro.ir.program import reference_pairs

        program = compile_source(SOURCE, strict=False).program
        (site1, site2), = reference_pairs(program)
        true_vectors = oracle_direction_vectors(
            site1.ref, site1.nest, site2.ref, site2.nest
        )
        assert true_vectors  # the pair really is dependent
        n_common = site1.nest.common_prefix_depth(site2.nest)
        degraded = protocol.degraded_report(
            str(site1.ref), str(site2.ref), n_common
        )
        assert degraded["dependent"] is True
        covered = {
            vector
            for vector in itertools.product("<=>", repeat=n_common)
        }
        assert true_vectors <= covered
        assert degraded["directions"] == [["*"] * n_common]

    def test_real_program_batch_blows_deadline(self):
        """No simulation: a whole-program batch heavy enough to engage
        the process pool cannot beat a 1 ms budget, so every pair comes
        back degraded (and flagged)."""
        body = "\n".join(
            f"    a[i + {k}][j] = a[i][j + {k}]" for k in range(6)
        )
        source = (
            "for i = 1 to 50 do\n"
            "  for j = 1 to 50 do\n"
            f"{body}\n"
            "  end\n"
            "end\n"
        )
        handle = _RunningServer(
            ServeConfig(announce=False, deadline_ms=1.0, batch_threshold=1)
        )
        try:
            with handle.client(timeout=120.0) as client:
                result = client.analyze_program(source)
        finally:
            handle.stop()
        assert result["summary"] == {"degraded": True}
        assert result["pairs"], "expected reference pairs"
        assert all(p["degraded"] for p in result["pairs"])
        assert all(p["dependent"] for p in result["pairs"])

    def test_generous_deadline_does_not_degrade(self):
        handle = _RunningServer(
            ServeConfig(announce=False, deadline_ms=60_000.0)
        )
        try:
            with handle.client() as client:
                report = client.analyze(source=SOURCE, pair=0)
        finally:
            handle.stop()
        assert report["degraded"] is False
        assert report["directions"] == [["<", "="]]


class TestBackpressure:
    def test_saturation_yields_overloaded_errors(self):
        handle = _RunningServer(
            ServeConfig(announce=False, max_inflight=1, queue_limit=0),
            cls=_SlowServer,
        )
        try:
            sources = [
                SOURCE.replace("a[i - 1]", f"a[i - {k}]") for k in (1, 2, 3)
            ]
            with handle.client() as client:
                results = client.call_many(
                    [
                        ("analyze", {"source": src, "pair": 0})
                        for src in sources
                    ]
                )
                stats = client.stats()
        finally:
            handle.stop()
        overloaded = [
            r
            for r in results
            if isinstance(r, ServeError)
            and r.code == protocol.ErrorCode.OVERLOADED
        ]
        served = [r for r in results if isinstance(r, dict)]
        assert len(overloaded) == 2
        assert len(served) == 1 and served[0]["dependent"] is True
        assert stats["registry"]["scalars"]["serve.backpressure"] == 2

    def test_control_ops_bypass_backpressure(self):
        handle = _RunningServer(
            ServeConfig(announce=False, max_inflight=1, queue_limit=0),
            cls=_SlowServer,
        )
        try:
            with handle.client() as client:
                results = client.call_many(
                    [
                        ("analyze", {"source": SOURCE, "pair": 0}),
                        ("health", {}),
                        ("stats", {}),
                    ]
                )
        finally:
            handle.stop()
        assert results[1]["status"] == "ok"
        assert "registry" in results[2]


class TestCoalescing:
    def test_identical_inflight_requests_coalesce(self):
        handle = _RunningServer(ServeConfig(announce=False), cls=_SlowServer)
        try:
            with handle.client() as client:
                results = client.call_many(
                    [("analyze", {"source": SOURCE, "pair": 0})] * 4
                )
                stats = client.stats()
        finally:
            handle.stop()
        assert all(r == results[0] for r in results)
        assert stats["registry"]["scalars"]["serve.coalesced"] == 3


class TestShutdownDrain:
    def test_shutdown_op_drains_and_exits_zero(self, running):
        with running.client() as client:
            report = client.analyze(source=SOURCE, pair=0)
            assert report["dependent"] is True
            assert client.shutdown() == {"draining": True}
        assert running.stop() == 0

    def test_inflight_work_is_answered_during_drain(self):
        handle = _RunningServer(ServeConfig(announce=False), cls=_SlowServer)
        with handle.client() as client:
            # The slow analyze is admitted first, then shutdown arrives
            # while it is still running: both must be answered.
            results = client.call_many(
                [
                    ("analyze", {"source": SOURCE, "pair": 0}),
                    ("shutdown", {}),
                ]
            )
        assert results[0]["dependent"] is True
        assert results[1] == {"draining": True}
        assert handle.stop() == 0

    def test_requests_after_shutdown_are_refused(self):
        handle = _RunningServer(ServeConfig(announce=False), cls=_SlowServer)
        with handle.client() as client:
            results = client.call_many(
                [
                    ("shutdown", {}),
                    ("analyze", {"source": SOURCE, "pair": 0}),
                ]
            )
        assert results[0] == {"draining": True}
        assert isinstance(results[1], ServeError)
        assert results[1].code == protocol.ErrorCode.SHUTTING_DOWN
        assert handle.stop() == 0


class TestCachePersistenceAcrossRestarts:
    def test_second_server_is_warm_and_bit_identical(self, tmp_path):
        cache = tmp_path / "serve-cache.json"
        first = _RunningServer(
            ServeConfig(announce=False, cache_path=str(cache))
        )
        try:
            with first.client() as client:
                cold = client.analyze(source=SOURCE, pair=0)
        finally:
            assert first.stop() == 0
        assert cache.exists()

        second = _RunningServer(
            ServeConfig(announce=False, cache_path=str(cache))
        )
        try:
            with second.client() as client:
                assert client.health()["cache_entries"] > 0
                warm = client.analyze(source=SOURCE, pair=0)
                stats = client.stats()
        finally:
            assert second.stop() == 0
        assert warm == cold
        # The warm run answered from the restored tables.
        tables = stats["cache"]
        hits = (
            tables["with_bounds"]["hits"] + tables["no_bounds"]["hits"]
        )
        assert hits > 0


class TestIncrementalSessions:
    """Protocol-v3 session ops: open, update by delta, dump the graph."""

    def _sources(self, seed=21, statements=8, arrays=4, edits=3):
        import random

        from repro.fuzz.edits import mutate, storm_program
        from repro.lang.unparse import program_to_source

        rng = random.Random(seed)
        program = storm_program(seed, statements=statements, arrays=arrays)
        versions = [program]
        for _ in range(edits):
            program, _ = mutate(program, rng, arrays=arrays)
            versions.append(program)
        return versions, [program_to_source(p) for p in versions]

    def test_health_advertises_sessions(self, running):
        with running.client() as client:
            assert client.health()["sessions"] is True

    def test_open_update_graph_roundtrip(self, running):
        versions, sources = self._sources()
        with running.client() as client:
            opened = client.open_session(source=sources[0])
            sid = opened["session"]
            assert opened["degraded"] is False
            assert opened["update"]["requery_fraction"] == 1.0
            for source in sources[1:]:
                summary = client.update_source(sid, source, verify=True)
                assert summary["degraded"] is False
                assert summary["reused"] > 0
            result = client.graph(sid)
        from repro.core.incremental import full_graph

        reference = full_graph(versions[-1])
        assert result["dot"] == reference.to_dot()
        assert result["edges"] == reference.edge_dicts()
        assert result["statements"] == len(versions[-1].statements)
        assert result["update"]["session"] == sid

    def test_sessions_warm_the_shared_cache(self, running):
        _, sources = self._sources()
        with running.client() as client:
            before = client.health()["cache_entries"]
            sid = client.open_session(source=sources[0])["session"]
            client.update_source(sid, sources[1])
            after = client.health()["cache_entries"]
        assert after > before

    def test_two_sessions_are_independent(self, running):
        _, sources = self._sources()
        with running.client() as client:
            first = client.open_session(source=sources[0])["session"]
            second = client.open_session(source=sources[1])["session"]
            assert first != second
            g1 = client.graph(first)
            g2 = client.graph(second)
        assert g1["session"] == first and g2["session"] == second

    def test_unknown_session_is_typed(self, running):
        # The dedicated code is what tells a durable client "replay
        # your journal" apart from "your request is malformed".
        with running.client() as client:
            for op, params in (
                ("update_source", {"session": "nope", "source": SOURCE}),
                ("graph", {"session": "nope"}),
            ):
                with pytest.raises(ServeError) as err:
                    client.call(op, params)
                assert err.value.code == protocol.ErrorCode.UNKNOWN_SESSION

    def test_graph_before_any_update_is_bad_request(self, running):
        with running.client() as client:
            sid = client.open_session()["session"]
            with pytest.raises(ServeError) as err:
                client.graph(sid)
            assert err.value.code == protocol.ErrorCode.BAD_REQUEST

    def test_bad_source_is_source_error_and_keeps_the_session(self, running):
        _, sources = self._sources()
        with running.client() as client:
            sid = client.open_session(source=sources[0])["session"]
            with pytest.raises(ServeError) as err:
                client.update_source(sid, "for broken ( syntax")
            assert err.value.code == protocol.ErrorCode.SOURCE
            # the failed update did not clobber the retained graph
            result = client.graph(sid)
        assert result["session"] == sid

    def test_pipelined_open_then_update_applies_in_order(self, running):
        """An update racing its own open_session must wait for it, not
        fail on a missing session id — the connection lock orders
        stateful ops even though each runs on its own worker thread."""
        _, sources = self._sources()
        with running.client() as client:
            opened = client.open_session(source=sources[0])
            sid = opened["session"]
            results = client.call_many(
                [
                    ("update_source", {"session": sid, "source": sources[1]}),
                    ("update_source", {"session": sid, "source": sources[2]}),
                    ("graph", {"session": sid}),
                ]
            )
        assert not any(isinstance(r, ServeError) for r in results)
        assert results[2]["update"] == results[1]

    def test_session_ops_share_the_admission_limit(self):
        handle = _RunningServer(
            ServeConfig(announce=False, max_inflight=1, queue_limit=0)
        )
        _SlowServer.DELAY = 0.3
        try:
            slow = _RunningServer(
                ServeConfig(announce=False, max_inflight=1, queue_limit=0),
                cls=_SlowServer,
            )
            try:
                with slow.client() as client:
                    results = client.call_many(
                        [("open_session", {}) for _ in range(6)]
                    )
                overloaded = [
                    r
                    for r in results
                    if isinstance(r, ServeError)
                    and r.code == protocol.ErrorCode.OVERLOADED
                ]
                assert overloaded  # backpressure applies to session ops
            finally:
                slow.stop()
        finally:
            handle.stop()
