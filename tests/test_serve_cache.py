"""Tests for the two-tier serving cache (repro.serve.cache)."""

import asyncio
import json
import threading

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.perfect import PROGRAM_SPECS, generate_program
from repro.serve.cache import RecencyMemoTable, ServeCache, SingleFlight


def _warm(cache: ServeCache, spec_index: int = 1) -> int:
    """Run a real workload through the cache's memoizer; entry count."""
    analyzer = DependenceAnalyzer(
        memoizer=cache.memoizer, want_witness=False
    )
    for query in generate_program(PROGRAM_SPECS[spec_index]):
        analyzer.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
    return cache.entry_count()


class TestRecencyMemoTable:
    def test_tracks_recency_on_every_touch(self):
        table = RecencyMemoTable()
        table.insert((1, 2), "a")
        table.insert((3, 4), "b")
        first = table.used[(1, 2)]
        assert table.used[(3, 4)] > first
        hit, value = table.lookup((1, 2))
        assert hit and value == "a"
        assert table.used[(1, 2)] > table.used[(3, 4)]

    def test_drop_removes_entry_and_stamp(self):
        table = RecencyMemoTable()
        table.insert((1, 2), "a")
        table.drop((1, 2))
        assert len(table) == 0
        assert (1, 2) not in table.used
        hit, _ = table.lookup((1, 2))
        assert not hit

    def test_restore_adopts_persisted_stamp(self):
        table = RecencyMemoTable()
        table.restore((1,), "x", used=50)
        assert table.used[(1,)] == 50
        # The clock resumes past the adopted stamp.
        table.insert((2,), "y")
        assert table.used[(2,)] > 50

    def test_concurrent_mutation_is_consistent(self):
        table = RecencyMemoTable(size=8)  # small: forces resizes
        n_threads, per_thread = 8, 500

        def hammer(base):
            for i in range(per_thread):
                key = (base, i)
                table.insert(key, i)
                hit, value = table.lookup(key)
                assert hit and value == i

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(table) == n_threads * per_thread
        assert len(table.used) == n_threads * per_thread


class TestServeCachePersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "serve-cache.json"
        cache = ServeCache(path=path)
        count = _warm(cache)
        assert count > 0
        written = cache.save()
        assert written > 0

        reloaded = ServeCache(path=path)
        assert reloaded.loaded_entries == count
        assert reloaded.entry_count() == count

    def test_warm_cache_serves_all_hits(self, tmp_path):
        """The reloaded tier answers a repeat workload with zero tests."""
        path = tmp_path / "serve-cache.json"
        cache = ServeCache(path=path)
        _warm(cache)
        cache.save()

        reloaded = ServeCache(path=path)
        analyzer = DependenceAnalyzer(
            memoizer=reloaded.memoizer, want_witness=False
        )
        for query in generate_program(PROGRAM_SPECS[1]):
            analyzer.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
        assert sum(analyzer.stats.decided_by.values()) == 0

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "serve-cache.json"
        cache = ServeCache(path=path)
        _warm(cache)
        cache.save()
        cache.save()  # overwrite path too
        leftovers = [p for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []

    def test_corrupt_store_warns_and_starts_cold(self, tmp_path):
        path = tmp_path / "serve-cache.json"
        cache = ServeCache(path=path)
        _warm(cache)
        cache.save()
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn file
        with pytest.warns(RuntimeWarning, match="cold"):
            cold = ServeCache(path=path)
        assert cold.entry_count() == 0
        assert cold.registry.get("serve.cache.load_failures") == 1

    def test_version_mismatch_warns_and_starts_cold(self, tmp_path):
        path = tmp_path / "serve-cache.json"
        cache = ServeCache(path=path)
        _warm(cache)
        cache.save()
        blob = json.loads(path.read_text())
        blob["cache_version"] = 999
        path.write_text(json.dumps(blob))
        with pytest.warns(RuntimeWarning, match="mismatch"):
            cold = ServeCache(path=path)
        assert cold.entry_count() == 0
        assert cold.registry.get("serve.cache.version_skips") == 1

    def test_keying_flags_must_match(self, tmp_path):
        """A store written under symmetry=False is useless (wrong keys)
        for a symmetry=True server: it must be skipped, not misread."""
        path = tmp_path / "serve-cache.json"
        cache = ServeCache(path=path, symmetry=False)
        _warm(cache)
        cache.save()
        with pytest.warns(RuntimeWarning, match="mismatch"):
            other = ServeCache(path=path, symmetry=True)
        assert other.entry_count() == 0

    def test_missing_file_is_silent(self, tmp_path):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cache = ServeCache(path=tmp_path / "absent.json")
        assert cache.entry_count() == 0

    def test_in_memory_cache_never_touches_disk(self):
        cache = ServeCache(path=None)
        _warm(cache)
        assert cache.save() == 0


class TestLruByteBound:
    def test_eviction_enforces_max_bytes(self, tmp_path):
        path = tmp_path / "serve-cache.json"
        big = ServeCache(path=path)
        full = _warm(big)
        unbounded = big.save()
        assert unbounded > 0

        limit = unbounded // 2
        bounded = ServeCache(path=tmp_path / "bounded.json", max_bytes=limit)
        _warm(bounded)
        written = bounded.save()
        assert written <= limit
        assert bounded.registry.get("serve.cache.evicted") > 0
        # Eviction shrank the in-process tables too, not just the image.
        assert bounded.entry_count() < full

    def test_least_recently_used_evicted_first(self, tmp_path):
        path = tmp_path / "serve-cache.json"
        cache = ServeCache(path=path)
        _warm(cache)
        table = cache.memoizer.with_bounds
        by_recency = sorted(table.used, key=table.used.__getitem__)
        oldest, newest = by_recency[0], by_recency[-1]

        cache.max_bytes = cache.save() - 1  # force at least one eviction
        cache.save()
        assert oldest not in table.used
        assert newest in table.used


class TestSingleFlight:
    def test_identical_inflight_queries_coalesce(self):
        flight = SingleFlight()
        calls = 0

        async def main():
            async def thunk():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.02)
                return "answer"

            results = await asyncio.gather(
                *(flight.run("key", thunk) for _ in range(5))
            )
            return results

        results = asyncio.run(main())
        assert results == ["answer"] * 5
        assert calls == 1
        assert flight.registry.get("serve.coalesced") == 4
        assert len(flight) == 0  # key released once settled

    def test_distinct_keys_do_not_coalesce(self):
        flight = SingleFlight()
        calls = 0

        async def main():
            async def thunk():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.01)
                return calls

            await asyncio.gather(
                flight.run("a", thunk), flight.run("b", thunk)
            )

        asyncio.run(main())
        assert calls == 2

    def test_followers_share_the_leaders_exception(self):
        flight = SingleFlight()

        async def main():
            async def thunk():
                await asyncio.sleep(0.02)
                raise ValueError("boom")

            results = await asyncio.gather(
                *(flight.run("key", thunk) for _ in range(3)),
                return_exceptions=True,
            )
            return results

        results = asyncio.run(main())
        assert all(isinstance(r, ValueError) for r in results)

    def test_sequential_calls_rerun(self):
        """Coalescing is concurrency-only: settled keys leave the table
        (the memo tier owns remembering)."""
        flight = SingleFlight()
        calls = 0

        async def main():
            async def thunk():
                nonlocal calls
                calls += 1
                return calls

            first = await flight.run("key", thunk)
            second = await flight.run("key", thunk)
            return first, second

        assert asyncio.run(main()) == (1, 2)
