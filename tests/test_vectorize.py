"""Tests for loop distribution / vectorization codegen."""

import pytest

from repro.core.vectorize import (
    ParallelLoop,
    SerialLoop,
    VectorStatement,
    vectorize,
)
from repro.ir import builder as B
from repro.opt import compile_source


def _vectorize(source: str):
    return vectorize(compile_source(source).program)


class TestSingleStatement:
    def test_independent_fully_vector(self):
        result = _vectorize("for i = 1 to 10 do\n  a[i] = b[i]\nend")
        assert result.count(VectorStatement) == 1
        assert result.count(SerialLoop) == 0

    def test_recurrence_fully_serial(self):
        result = _vectorize("for i = 2 to 10 do\n  a[i] = a[i - 1]\nend")
        assert result.count(SerialLoop) == 1
        assert result.count(VectorStatement) == 0

    def test_outer_parallel_inner_serial(self):
        result = _vectorize(
            "for i = 1 to 10 do\n"
            "  for j = 2 to 10 do\n"
            "    u[i][j] = u[i][j - 1]\n"
            "  end\n"
            "end"
        )
        assert result.count(ParallelLoop) == 1
        assert result.count(SerialLoop) == 1
        (outer,) = result.nodes
        assert isinstance(outer, ParallelLoop) and outer.var == "i"
        (inner,) = outer.body
        assert isinstance(inner, SerialLoop) and inner.var == "j"

    def test_outer_serial_inner_vector(self):
        # carried at i only: serializing i satisfies the edge, j vectorizes
        result = _vectorize(
            "for i = 2 to 10 do\n"
            "  for j = 1 to 10 do\n"
            "    u[i][j] = u[i - 1][j]\n"
            "  end\n"
            "end"
        )
        (outer,) = result.nodes
        assert isinstance(outer, SerialLoop) and outer.var == "i"
        (leaf,) = outer.body
        assert isinstance(leaf, VectorStatement)
        assert leaf.vector_levels == (1,)


class TestDistribution:
    def test_acyclic_statements_distribute(self):
        result = _vectorize(
            "for i = 2 to 100 do\n"
            "  a[i] = b[i] + 1\n"
            "  c[i] = a[i - 1] + 2\n"
            "end"
        )
        # both statements fully vectorized, in dependence order
        assert result.count(VectorStatement) == 2
        assert result.count(SerialLoop) == 0
        first, second = result.nodes
        assert first.stmt.write.array == "a"
        assert second.stmt.write.array == "c"

    def test_distribution_order_respects_dependences(self):
        # textual order S1 reads what S2 writes at an *earlier* iteration:
        # the a-producing statement must still come first after distribution.
        result = _vectorize(
            "for i = 2 to 100 do\n"
            "  c[i] = a[i - 1] + 2\n"
            "  a[i] = b[i] + 1\n"
            "end"
        )
        assert result.count(VectorStatement) == 2
        first, second = result.nodes
        assert first.stmt.write.array == "a"
        assert second.stmt.write.array == "c"

    def test_cycle_stays_fused_and_serial(self):
        # mutual recurrence: S1 and S2 form one SCC
        result = _vectorize(
            "for i = 2 to 100 do\n"
            "  a[i] = b[i - 1]\n"
            "  b[i] = a[i - 1]\n"
            "end"
        )
        assert result.count(SerialLoop) == 1
        (loop,) = result.nodes
        assert isinstance(loop, SerialLoop)
        assert len(loop.body) == 2  # both statements inside one loop

    def test_mixed_cycle_and_free_statement(self):
        result = _vectorize(
            "for i = 2 to 100 do\n"
            "  a[i] = b[i - 1]\n"
            "  b[i] = a[i - 1]\n"
            "  d[i] = e[i]\n"
            "end"
        )
        assert result.count(SerialLoop) == 1
        assert result.count(VectorStatement) == 1


class TestSameIterationDependences:
    def test_loop_independent_edge_keeps_order(self):
        # S1 writes a[i], S2 reads a[i] in the same iteration: both can
        # vectorize (distributed), S1 first.
        result = _vectorize(
            "for i = 1 to 100 do\n"
            "  a[i] = b[i]\n"
            "  c[i] = a[i]\n"
            "end"
        )
        assert result.count(VectorStatement) == 2
        first, second = result.nodes
        assert first.stmt.write.array == "a"

    def test_self_update_parallel(self):
        # a[i] = a[i] + 1: loop-independent self edge; the loop is
        # parallel (emitted as a parallel loop around the statement).
        result = _vectorize(
            "for i = 1 to 100 do\n  a[i] = a[i] + 1\nend"
        )
        assert result.count(SerialLoop) == 0
        assert (
            result.count(ParallelLoop) + result.count(VectorStatement) >= 1
        )


class TestValidation:
    def test_mismatched_nests_rejected(self):
        prog = B.program("p")
        B.assign(prog, B.nest(("i", 1, 5)), ("a", [B.v("i")]), [])
        B.assign(prog, B.nest(("j", 1, 5)), ("b", [B.v("j")]), [])
        with pytest.raises(ValueError):
            vectorize(prog)

    def test_empty_program(self):
        assert vectorize(B.program("p")).render() == ""

    def test_render_smoke(self):
        text = _vectorize(
            "for i = 2 to 10 do\n  a[i] = a[i - 1]\nend"
        ).render()
        assert "DO i (serial)" in text
