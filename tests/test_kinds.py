"""Tests for dependence kind classification (flow/anti/output/input)."""

from repro.core.analyzer import DependenceAnalyzer
from repro.core.kinds import DependenceKind, classify_pair
from repro.ir import builder as B
from repro.ir.program import reference_pairs


def _sites(src_write, src_read, nest):
    prog = B.program("t")
    B.assign(prog, nest, src_write, [src_read])
    (pair,) = reference_pairs(prog)
    return pair


class TestFlowAnti:
    def test_flow_dependence(self):
        # a[i+1] = a[i]: the write at iteration i reaches the read at i+1.
        nest = B.nest(("i", 1, 10))
        site1, site2 = _sites(("a", [B.v("i") + 1]), ("a", [B.v("i")]), nest)
        edges = classify_pair(site1, site2)
        assert len(edges) == 1
        (edge,) = edges
        assert edge.kind == DependenceKind.FLOW
        assert edge.source.ref.is_write and not edge.sink.ref.is_write
        assert edge.vector == ("<",)
        assert edge.loop_carried

    def test_anti_dependence(self):
        # a[i] = a[i+1]: iteration i reads a[i+1] before i+1 writes it.
        nest = B.nest(("i", 1, 10))
        site1, site2 = _sites(("a", [B.v("i")]), ("a", [B.v("i") + 1]), nest)
        edges = classify_pair(site1, site2)
        assert len(edges) == 1
        (edge,) = edges
        assert edge.kind == DependenceKind.ANTI
        assert not edge.source.ref.is_write and edge.sink.ref.is_write
        # source-to-sink orientation: read at i, write at i+1 -> '<'
        assert edge.vector == ("<",)

    def test_loop_independent_self_is_anti(self):
        # a[i] = a[i] + 1: within one iteration the RHS read executes
        # before the store, so the same-iteration collision is an anti
        # dependence from the read to the write.
        nest = B.nest(("i", 1, 10))
        site1, site2 = _sites(("a", [B.v("i")]), ("a", [B.v("i")]), nest)
        edges = classify_pair(site1, site2)
        assert len(edges) == 1
        (edge,) = edges
        assert not edge.loop_carried
        assert edge.vector == ("=",)
        assert edge.kind == DependenceKind.ANTI
        assert not edge.source.ref.is_write

    def test_loop_independent_across_statements_is_flow(self):
        # S1 writes a[i], S2 reads it in the same iteration: flow.
        nest = B.nest(("i", 1, 10))
        prog = B.program("t")
        B.assign(prog, nest, ("a", [B.v("i")]), [])
        B.assign(prog, nest, ("c", [B.v("i")]), [("a", [B.v("i")])])
        pairs = [
            p for p in reference_pairs(prog) if p[0].ref.array == "a"
        ]
        (pair,) = pairs
        (edge,) = classify_pair(*pair)
        assert edge.kind == DependenceKind.FLOW
        assert edge.vector == ("=",)

    def test_output_dependence(self):
        nest = B.nest(("i", 1, 10))
        prog = B.program("t")
        B.assign(prog, nest, ("a", [B.v("i")]), [])
        B.assign(prog, nest, ("a", [B.v("i") + 1]), [])
        (pair,) = reference_pairs(prog)
        edges = classify_pair(*pair)
        assert all(e.kind == DependenceKind.OUTPUT for e in edges)
        assert edges

    def test_independent_pair_no_edges(self):
        nest = B.nest(("i", 1, 10))
        site1, site2 = _sites(
            ("a", [B.v("i")]), ("a", [B.v("i") + 100]), nest
        )
        assert classify_pair(site1, site2) == []

    def test_star_vector_yields_both_orientations(self):
        # unused outer loop: vector (* <) could run either way at level 0.
        nest = B.nest(("k", 1, 5), ("i", 1, 10))
        site1, site2 = _sites(("a", [B.v("i") + 1]), ("a", [B.v("i")]), nest)
        edges = classify_pair(site1, site2)
        kinds = sorted(e.kind for e in edges)
        assert kinds == [DependenceKind.ANTI, DependenceKind.FLOW]

    def test_directions_reused_if_given(self):
        nest = B.nest(("i", 1, 10))
        site1, site2 = _sites(("a", [B.v("i") + 1]), ("a", [B.v("i")]), nest)
        analyzer = DependenceAnalyzer()
        dirs = analyzer.directions(site1.ref, site1.nest, site2.ref, site2.nest)
        edges = classify_pair(site1, site2, analyzer, directions=dirs)
        assert len(edges) == 1
