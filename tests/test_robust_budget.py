"""Tests for the resource governor (repro.robust.budget).

Covers the budget/scope primitives, the analyzer's degradation path
(blown budget -> conservative flagged verdict, never an exception or a
hang), the FM unbounded-range fix the budget work flushed out, and the
conservativeness property: on budget-starved runs over the seeded fuzz
tiers, every degraded verdict over-approximates the enumeration
oracle.
"""

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.fuzz.generator import generate_case
from repro.fuzz.harness import _expand, _oracle_scan
from repro.ir import builder as B
from repro.robust.budget import (
    ALL_REASONS,
    DEGRADED_BUDGET,
    NULL_SCOPE,
    REASON_COEFF_BITS,
    REASON_ELIM_DEPTH,
    REASON_FM_BRANCH_NODES,
    REASON_LIVE_CONSTRAINTS,
    REASON_WALL_CLOCK,
    BudgetExceeded,
    BudgetScope,
    ResourceBudget,
)


def _shift_pair(k=1):
    nest = B.nest(("i", 1, 20))
    return (
        B.ref("a", [B.v("i") + k], write=True),
        nest,
        B.ref("a", [B.v("i")]),
        nest,
    )


class TestResourceBudget:
    def test_default_is_unlimited(self):
        assert ResourceBudget().unlimited

    def test_any_limit_is_not_unlimited(self):
        assert not ResourceBudget(deadline_s=1.0).unlimited
        assert not ResourceBudget(fm_branch_nodes=8).unlimited
        assert not ResourceBudget(max_coeff_bits=64).unlimited

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            ResourceBudget(deadline_s=-1.0)
        with pytest.raises(ValueError):
            ResourceBudget(fm_branch_nodes=-1)

    def test_strict_budget_limits_everything(self):
        strict = ResourceBudget.strict()
        assert not strict.unlimited
        assert strict.deadline_s is not None
        assert strict.fm_branch_nodes is not None
        assert strict.max_live_constraints is not None
        assert strict.max_coeff_bits is not None
        assert strict.max_elim_depth is not None

    def test_budget_is_picklable(self):
        import pickle

        budget = ResourceBudget.strict()
        assert pickle.loads(pickle.dumps(budget)) == budget


class TestBudgetScope:
    def test_null_scope_checks_are_noops(self):
        NULL_SCOPE.tick()
        NULL_SCOPE.charge_fm_node()
        NULL_SCOPE.check_constraints(10**9)
        NULL_SCOPE.check_coeff(10**100)
        NULL_SCOPE.check_depth(10**9)

    def test_expired_deadline_raises_wall_clock(self):
        scope = ResourceBudget(deadline_s=0.0).open()
        with pytest.raises(BudgetExceeded) as excinfo:
            scope.tick()
        assert excinfo.value.reason == REASON_WALL_CLOCK

    def test_fm_nodes_exhaust(self):
        scope = ResourceBudget(fm_branch_nodes=2).open()
        scope.charge_fm_node()
        scope.charge_fm_node()
        with pytest.raises(BudgetExceeded) as excinfo:
            scope.charge_fm_node()
        assert excinfo.value.reason == REASON_FM_BRANCH_NODES

    def test_constraint_ceiling(self):
        scope = ResourceBudget(max_live_constraints=4).open()
        scope.check_constraints(4)
        with pytest.raises(BudgetExceeded) as excinfo:
            scope.check_constraints(5)
        assert excinfo.value.reason == REASON_LIVE_CONSTRAINTS

    def test_coeff_bit_ceiling(self):
        scope = ResourceBudget(max_coeff_bits=8).open()
        scope.check_coeff(255)
        scope.check_coeff(-255)
        with pytest.raises(BudgetExceeded) as excinfo:
            scope.check_coeff(256)
        assert excinfo.value.reason == REASON_COEFF_BITS

    def test_depth_ceiling(self):
        scope = ResourceBudget(max_elim_depth=3).open()
        scope.check_depth(3)
        with pytest.raises(BudgetExceeded) as excinfo:
            scope.check_depth(4)
        assert excinfo.value.reason == REASON_ELIM_DEPTH

    def test_all_reasons_are_known(self):
        assert REASON_WALL_CLOCK in ALL_REASONS
        assert DEGRADED_BUDGET not in ALL_REASONS  # a test name, not a reason


class TestAnalyzerDegradation:
    """A blown budget surfaces as the conservative flagged verdict."""

    def test_expired_deadline_degrades_analyze(self):
        analyzer = DependenceAnalyzer(
            memoizer=Memoizer(), budget=ResourceBudget(deadline_s=0.0)
        )
        result = analyzer.analyze(*_shift_pair())
        assert result.dependent is True
        assert result.decided_by == DEGRADED_BUDGET
        assert result.exact is False
        assert result.degraded_reason == REASON_WALL_CLOCK
        assert result.degraded

    def test_expired_deadline_degrades_directions(self):
        analyzer = DependenceAnalyzer(
            memoizer=Memoizer(), budget=ResourceBudget(deadline_s=0.0)
        )
        directions = analyzer.directions(*_shift_pair())
        assert directions.vectors == frozenset({("*",)})
        assert directions.exact is False
        assert directions.degraded_reason == REASON_WALL_CLOCK

    def test_degradation_is_counted(self):
        analyzer = DependenceAnalyzer(
            memoizer=Memoizer(), budget=ResourceBudget(deadline_s=0.0)
        )
        analyzer.analyze(*_shift_pair())
        family = analyzer.stats.registry.family("robust.degraded")
        assert family[REASON_WALL_CLOCK] == 1

    def test_degraded_answers_are_never_memoized(self):
        memoizer = Memoizer()
        analyzer = DependenceAnalyzer(
            memoizer=memoizer, budget=ResourceBudget(deadline_s=0.0)
        )
        analyzer.analyze(*_shift_pair())
        analyzer.analyze(*_shift_pair())
        # The no-bounds table may cache the GCD factorization (exact
        # data, budget-independent); the *verdict* table must stay
        # empty — a degraded answer never becomes a memo hit.
        assert len(memoizer.with_bounds) == 0
        second = analyzer.analyze(*_shift_pair())
        assert second.from_memo is False

    def test_unbudgeted_analyzer_is_unchanged(self):
        governed = DependenceAnalyzer(memoizer=Memoizer(), budget=None)
        plain = DependenceAnalyzer(memoizer=Memoizer())
        assert governed.analyze(*_shift_pair()) == plain.analyze(*_shift_pair())

    def test_unlimited_budget_behaves_like_none(self):
        governed = DependenceAnalyzer(
            memoizer=Memoizer(), budget=ResourceBudget()
        )
        plain = DependenceAnalyzer(memoizer=Memoizer())
        assert governed.analyze(*_shift_pair()) == plain.analyze(*_shift_pair())


class TestConservativeness:
    """Acceptance property: budget-starved answers over-approximate the
    enumeration oracle on the seeded fuzz tiers."""

    TIERS = ("constant", "coupled", "triangular", "degenerate")
    CASES_PER_TIER = 12
    STARVED = ResourceBudget(
        fm_branch_nodes=1,
        max_live_constraints=6,
        max_coeff_bits=8,
        max_elim_depth=1,
    )

    def _cases(self):
        for tier in self.TIERS:
            for index in range(self.CASES_PER_TIER):
                yield generate_case(7, index, tier)

    def test_starved_verdicts_are_conservative(self):
        degraded_seen = 0
        for case in self._cases():
            analyzer = DependenceAnalyzer(
                memoizer=Memoizer(), budget=self.STARVED
            )
            result = analyzer.analyze(
                case.ref1, case.nest1, case.ref2, case.nest2
            )
            oracle_dependent, oracle_vectors, _ = _oracle_scan(case)
            if result.degraded:
                degraded_seen += 1
                assert result.dependent is True  # lattice top
            if oracle_dependent:
                # The one direction a dependence tester must never err:
                # a real dependence may not be reported independent.
                assert result.dependent is True
        # The property must not pass vacuously: the starved budget has
        # to actually blow on some of the seeded corpus.
        assert degraded_seen > 0

    def test_starved_directions_cover_the_oracle(self):
        for case in self._cases():
            analyzer = DependenceAnalyzer(
                memoizer=Memoizer(), budget=self.STARVED
            )
            directions = analyzer.directions(
                case.ref1, case.nest1, case.ref2, case.nest2
            )
            _, oracle_vectors, _ = _oracle_scan(case)
            covered = set()
            for vector in directions.vectors:
                covered.update(_expand(vector))
            for vector in oracle_vectors:
                assert vector in covered, (
                    f"{case.tier}[{case.index}]: oracle vector {vector} "
                    f"not covered by {sorted(directions.vectors)} "
                    f"(degraded={directions.degraded_reason})"
                )


class TestScopeThreading:
    """Budget scopes are per-query state, never analyzer state."""

    def test_scope_not_stored_on_analyzer(self):
        analyzer = DependenceAnalyzer(
            memoizer=Memoizer(), budget=ResourceBudget.strict(deadline_s=30.0)
        )
        analyzer.analyze(*_shift_pair())
        assert not any(
            isinstance(getattr(analyzer, name, None), BudgetScope)
            for name in vars(analyzer)
        )

    def test_fresh_scope_per_query(self):
        # Each query gets the full node budget: many queries in a row
        # must not exhaust a shared counter.
        analyzer = DependenceAnalyzer(
            memoizer=None, budget=ResourceBudget(fm_branch_nodes=64)
        )
        for k in range(1, 6):
            result = analyzer.analyze(*_shift_pair(k))
            assert not result.degraded
