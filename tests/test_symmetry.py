"""Tests for the symmetric memoization optimization (§5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.ir import builder as B
from repro.system.depsystem import build_problem

coef = st.integers(min_value=-3, max_value=3)
shift = st.integers(min_value=-8, max_value=8)


class TestSwappedProblem:
    def test_swap_involution_key(self):
        nest = B.nest(("i", 1, 10), ("j", 1, 5))
        problem = build_problem(
            B.ref("a", [B.v("i") + 1, B.v("j")], write=True),
            nest,
            B.ref("a", [B.v("i"), B.v("j") + 2]),
            nest,
        )
        double = problem.swapped().swapped()
        assert double.key_vector(True) == problem.key_vector(True)

    def test_swap_matches_reversed_build(self):
        """problem.swapped() keys like the pair built in reverse order."""
        nest = B.nest(("i", 1, 10))
        r1 = B.ref("a", [B.v("i") + 1], write=True)
        r2 = B.ref("a", [B.v("i")])
        forward = build_problem(r1, nest, r2, nest)
        backward = build_problem(r2, nest, r1, nest)
        assert forward.swapped().key_vector(True) == backward.key_vector(True)

    def test_swap_with_symbolic_bound(self):
        nest = B.nest(("i", 1, B.v("n")))
        r1 = B.ref("a", [B.v("i") + 1], write=True)
        r2 = B.ref("a", [B.v("i")])
        forward = build_problem(r1, nest, r2, nest)
        backward = build_problem(r2, nest, r1, nest)
        assert forward.swapped().key_vector(True) == backward.key_vector(True)


class TestSymmetricMemo:
    def test_swapped_pair_hits(self):
        """a[i] vs a[i-1] and a[i-1] vs a[i] share one memo slot."""
        memo = Memoizer(symmetry=True)
        analyzer = DependenceAnalyzer(memoizer=memo)
        nest = B.nest(("i", 1, 10))
        first = analyzer.analyze(
            B.ref("a", [B.v("i")], write=True), nest,
            B.ref("a", [B.v("i") - 1]), nest,
        )
        second = analyzer.analyze(
            B.ref("a", [B.v("i") - 1], write=True), nest,
            B.ref("a", [B.v("i")]), nest,
        )
        assert not first.from_memo
        assert second.from_memo
        assert first.dependent and second.dependent
        # distance flips orientation with the pair order: the write
        # a[i] collides with the read a[i'-1] at i' = i + 1 (d = +1);
        # swapped, the collision is at i' = i - 1 (d = -1).
        assert first.distance == (1,)
        assert second.distance == (-1,)

    def test_without_symmetry_no_sharing(self):
        memo = Memoizer(symmetry=False)
        analyzer = DependenceAnalyzer(memoizer=memo)
        nest = B.nest(("i", 1, 10))
        analyzer.analyze(
            B.ref("a", [B.v("i")], write=True), nest,
            B.ref("a", [B.v("i") - 1]), nest,
        )
        second = analyzer.analyze(
            B.ref("a", [B.v("i") - 1], write=True), nest,
            B.ref("a", [B.v("i")]), nest,
        )
        assert not second.from_memo

    @given(coef, shift, coef, shift, st.integers(1, 8))
    @settings(max_examples=200, deadline=None)
    def test_symmetry_never_changes_verdicts(self, a1, c1, a2, c2, n):
        nest = B.nest(("i", 1, n))
        r1 = B.ref("a", [B.v("i") * a1 + c1], write=True)
        r2 = B.ref("a", [B.v("i") * a2 + c2])
        plain = DependenceAnalyzer()
        symmetric = DependenceAnalyzer(memoizer=Memoizer(symmetry=True))
        for x, y in ((r1, r2), (r2, r1), (r1, r2)):
            expected = plain.analyze(x, nest, y, nest)
            got = symmetric.analyze(x, nest, y, nest)
            assert expected.dependent == got.dependent
            if expected.distance is not None and got.distance is not None:
                assert expected.distance == got.distance

    def test_2d_symmetry_distance_flip(self):
        memo = Memoizer(symmetry=True)
        analyzer = DependenceAnalyzer(memoizer=memo)
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        w = B.ref("a", [B.v("i") + 2, B.v("j") - 1], write=True)
        r = B.ref("a", [B.v("i"), B.v("j")])
        first = analyzer.analyze(w, nest, r, nest)
        second = analyzer.analyze(
            B.ref("a", [B.v("i"), B.v("j")], write=True), nest,
            B.ref("a", [B.v("i") + 2, B.v("j") - 1]), nest,
        )
        assert first.distance is not None and second.distance is not None
        assert first.distance == tuple(-d for d in second.distance)
