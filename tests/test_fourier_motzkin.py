"""Tests for Fourier-Motzkin elimination with integer heuristics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deptests.base import Verdict
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.oracle.enumerate import solve_system
from repro.system.constraints import ConstraintSystem

small = st.integers(min_value=-6, max_value=6)


def _system(n, *rows):
    system = ConstraintSystem(tuple(f"t{i}" for i in range(n)))
    for coeffs, bound in rows:
        system.add(coeffs, bound)
    return system


class TestBasics:
    def test_always_applicable(self):
        assert FourierMotzkinTest().applicable(_system(1, ([1], 0)))

    def test_simple_feasible(self):
        system = _system(2, ([1, 1], 10), ([-1, 0], 0), ([0, -1], 0))
        result = FourierMotzkinTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)

    def test_real_infeasible(self):
        # t0 + t1 <= 0 and t0 + t1 >= 5.
        system = _system(2, ([1, 1], 0), ([-1, -1], -5))
        assert (
            FourierMotzkinTest().run(system).verdict is Verdict.INDEPENDENT
        )

    def test_unbounded_system(self):
        system = _system(3, ([1, 1, 1], 100))
        result = FourierMotzkinTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)

    def test_empty_system(self):
        system = _system(2)
        result = FourierMotzkinTest().run(system)
        assert result.verdict is Verdict.DEPENDENT


class TestIntegerGaps:
    def test_real_feasible_integer_infeasible_single_var(self):
        # 2t0 >= 5 and 2t0 <= 5: only t0 = 2.5. Normalization alone
        # tightens this away (2t <= 5 -> t <= 2; -2t <= -5 -> t >= 3).
        system = _system(1, ([2], 5), ([-2], -5))
        assert (
            FourierMotzkinTest().run(system).verdict is Verdict.INDEPENDENT
        )

    def test_paper_special_case_constant_range(self):
        # 3t0 - 3t1 ... craft a gap at the *last* eliminated variable:
        # 0.5 <= t0 + t1 <= 0.7 scaled: 10(t0+t1) >= 5, 10(t0+t1) <= 7.
        # After normalization: t0 + t1 >= 1 and t0 + t1 <= 0 -> infeasible.
        system = _system(2, ([-10, -10], -5), ([10, 10], 7))
        assert (
            FourierMotzkinTest().run(system).verdict is Verdict.INDEPENDENT
        )

    def test_branch_and_bound_gap(self):
        # 2t0 - 2t1 == 1 has real solutions but no integer ones; keep
        # coefficients coprime-ish so normalization alone cannot settle it:
        # 2t0 - 2t1 >= 1 and 2t0 - 2t1 <= 1 normalize to t0-t1 >= 1, <= 0.
        system = _system(2, ([2, -2], 1), ([-2, 2], -1))
        assert (
            FourierMotzkinTest().run(system).verdict is Verdict.INDEPENDENT
        )

    def test_true_branch_and_bound(self):
        # 3x + 3y == 4 within a box: real-feasible line, no lattice point.
        # Written with coprime cross terms so gcd tightening can't fire:
        # 3x + 3y <= 4 and 3x + 3y >= 4... gcd(3,3)=3 -> floor tightens.
        # Use 3x + 5y == 4 with parity cut: 2 divides 3x+5y-4 nowhere...
        # Instead: x + y >= 0.5 and x + y <= 0.5 via odd/even split:
        # 2x + 2y <= 1, -2x - 2y <= -1 -> tightened to x+y <= 0, >= 1.
        system = _system(2, ([2, 2], 1), ([-2, -2], -1))
        assert (
            FourierMotzkinTest().run(system).verdict is Verdict.INDEPENDENT
        )

    def test_budget_exhaustion_unknown(self):
        # With a zero budget a genuine fractional branch returns UNKNOWN.
        # Build a gap whose bounds involve another variable so the
        # constant-range shortcut cannot apply: 2t0 = t1 and t1 odd-ish.
        system = _system(
            2,
            ([2, -1], 0),  # 2 t0 <= t1
            ([-2, 1], 0),  # 2 t0 >= t1
            ([0, -1], -1),  # t1 >= 1
            ([0, 1], 1),  # t1 <= 1  => t1 = 1, t0 = 0.5
        )
        strict = FourierMotzkinTest(max_branch_nodes=0)
        result = strict.run(system)
        assert result.verdict in (Verdict.UNKNOWN, Verdict.INDEPENDENT)
        if result.verdict is Verdict.UNKNOWN:
            assert not result.exact
        # With budget the same system is settled exactly.
        assert (
            FourierMotzkinTest().run(system).verdict
            is Verdict.INDEPENDENT
        )


class TestExactnessAgainstOracle:
    @given(
        st.lists(
            st.tuples(
                st.tuples(small, small, small).filter(lambda c: any(c)),
                st.integers(-12, 18),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=250, deadline=None)
    def test_agrees_with_enumeration(self, rows):
        system = _system(3, *[(list(c), b) for c, b in rows])
        for var in range(3):
            lo = [0, 0, 0]
            lo[var] = -1
            hi = [0, 0, 0]
            hi[var] = 1
            system.add(lo, 5)
            system.add(hi, 5)
        result = FourierMotzkinTest().run(system)
        brute = solve_system(system, -5, 5)
        assert result.verdict is not Verdict.NOT_APPLICABLE
        if result.verdict is Verdict.UNKNOWN:
            # Budget blown (should be effectively impossible here).
            return
        assert (brute is not None) == (result.verdict is Verdict.DEPENDENT)
        if result.witness is not None:
            assert system.evaluate(result.witness)


class TestUnboundedRanges:
    """Unbounded variable ranges are represented as None, not huge
    sentinel Fractions: bounds beyond any fixed magnitude must not be
    mistaken for infinities (regression for the old +/-10**30 hack)."""

    def test_lower_bound_beyond_old_sentinel(self):
        # t0 >= 10**31: under the old _POS_INF = 10**30 sentinel the
        # range [10**31, "inf") collapsed to empty and the system was
        # falsely reported independent.
        system = _system(1, ([-1], -(10**31)))
        result = FourierMotzkinTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert result.witness is not None
        assert result.witness[0] >= 10**31
        assert system.evaluate(result.witness)

    def test_upper_bound_beyond_old_sentinel(self):
        # t0 <= -10**31 (below the old negative sentinel).
        system = _system(1, ([1], -(10**31)))
        result = FourierMotzkinTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert result.witness is not None
        assert result.witness[0] <= -(10**31)

    def test_huge_finite_window(self):
        # A genuinely bounded range entirely beyond the old sentinels.
        lo, hi = 10**31, 10**31 + 5
        system = _system(1, ([-1], -lo), ([1], hi))
        result = FourierMotzkinTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert lo <= result.witness[0] <= hi

    def test_huge_empty_window_still_independent(self):
        # lo > hi beyond the sentinels: must still detect emptiness.
        system = _system(1, ([-1], -(10**31 + 5)), ([1], 10**31))
        result = FourierMotzkinTest().run(system)
        assert result.verdict is Verdict.INDEPENDENT

    def test_two_vars_partially_unbounded(self):
        # t0 - t1 <= -10**31 with both otherwise unbounded.
        system = _system(2, ([1, -1], -(10**31)))
        result = FourierMotzkinTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)
