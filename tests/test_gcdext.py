"""Unit and property tests for the exact integer arithmetic helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.linalg.gcdext import (
    ceil_div,
    divides,
    extended_gcd,
    floor_div,
    gcd,
    gcd_all,
    lcm,
)

ints = st.integers(min_value=-10**9, max_value=10**9)
nonzero = ints.filter(lambda x: x != 0)


class TestGcd:
    def test_basic(self):
        assert gcd(12, 18) == 6
        assert gcd(-12, 18) == 6
        assert gcd(0, 0) == 0
        assert gcd(0, 7) == 7

    def test_gcd_all(self):
        assert gcd_all([4, 6, 8]) == 2
        assert gcd_all([]) == 0
        assert gcd_all([0, 0]) == 0
        assert gcd_all([5]) == 5
        assert gcd_all([-10, 15]) == 5

    def test_gcd_all_early_exit(self):
        assert gcd_all([3, 7, 10**18]) == 1


class TestExtendedGcd:
    @given(ints, ints)
    def test_bezout_identity(self, a, b):
        g, x, y = extended_gcd(a, b)
        assert g == math.gcd(a, b)
        assert a * x + b * y == g

    def test_examples(self):
        g, x, y = extended_gcd(240, 46)
        assert g == 2
        assert 240 * x + 46 * y == 2


class TestDivision:
    @given(ints, nonzero)
    def test_floor_div_definition(self, a, b):
        # q = floor(a/b)  <=>  q <= a/b < q + 1
        q = floor_div(a, b)
        if b > 0:
            assert q * b <= a < (q + 1) * b
        else:
            assert q * b >= a > (q + 1) * b

    @given(ints, nonzero)
    def test_ceil_div_definition(self, a, b):
        # q = ceil(a/b)  <=>  q - 1 < a/b <= q
        q = ceil_div(a, b)
        if b > 0:
            assert (q - 1) * b < a <= q * b
        else:
            assert (q - 1) * b > a >= q * b

    @given(ints, nonzero)
    def test_ceil_floor_duality(self, a, b):
        assert ceil_div(a, b) == -floor_div(-a, b)

    def test_negative_divisor(self):
        assert floor_div(7, -2) == -4  # 7/-2 = -3.5 -> -4
        assert ceil_div(7, -2) == -3
        assert floor_div(-7, 2) == -4
        assert ceil_div(-7, 2) == -3

    def test_zero_division(self):
        with pytest.raises(ZeroDivisionError):
            floor_div(1, 0)
        with pytest.raises(ZeroDivisionError):
            ceil_div(1, 0)


class TestDivides:
    def test_zero_cases(self):
        assert divides(0, 0)
        assert not divides(0, 5)
        assert divides(5, 0)

    @given(nonzero, ints)
    def test_consistency(self, d, n):
        assert divides(d, n) == (n % d == 0)


class TestLcm:
    def test_basic(self):
        assert lcm(4, 6) == 12
        assert lcm(0, 5) == 0
        assert lcm(-4, 6) == 12

    @given(nonzero, nonzero)
    def test_lcm_gcd_product(self, a, b):
        assert lcm(a, b) * math.gcd(a, b) == abs(a * b)
