"""Property tests for the trapezoidal extreme-value propagation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import affine_extremes
from repro.ir import builder as B
from repro.ir.affine import AffineExpr

coef = st.integers(min_value=-3, max_value=3)
small = st.integers(min_value=-5, max_value=5)
bound = st.integers(min_value=1, max_value=6)


class TestAffineExtremes:
    def test_constant(self):
        lo, hi = affine_extremes(AffineExpr(7), [])
        assert (lo, hi) == (7, 7)

    def test_rectangular(self):
        nest = B.nest(("i", 1, 10))
        lo, hi = affine_extremes(B.v("i") * 2 + 1, list(nest))
        assert (lo, hi) == (3, 21)

    def test_negative_coefficient(self):
        nest = B.nest(("i", 1, 10))
        lo, hi = affine_extremes(B.v("i") * -3, list(nest))
        assert (lo, hi) == (-30, -3)

    def test_trapezoid_exact(self):
        # j in [1, i], i in [1, 5]: max of i + j is 10 (not 5 + 5 = 10
        # here -- but for j <= i the widened box would also say 10);
        # use i - 2j: widened box min = 1 - 10; trapezoid min = i - 2i.
        nest = B.nest(("i", 1, 5), ("j", 1, B.v("i")))
        lo, hi = affine_extremes(B.v("i") - B.v("j") * 2, list(nest))
        # min over trapezoid: j = i -> i - 2i = -i -> min -5
        assert lo == -5
        # max: j = 1 -> i - 2 -> max 3
        assert hi == 3

    def test_symbolic_leftover_unbounded(self):
        nest = B.nest(("i", 1, B.v("n")))
        lo, hi = affine_extremes(B.v("i"), list(nest))
        assert lo == 1 and hi == float("inf")

    def test_symbolic_cancellation(self):
        nest = B.nest(("i", B.v("n"), B.v("n") + 5))
        # i - n over [n, n+5] is [0, 5]: the symbol cancels exactly.
        lo, hi = affine_extremes(B.v("i") - B.v("n"), list(nest))
        assert (lo, hi) == (0, 5)

    @given(coef, coef, small, bound, st.integers(0, 4))
    @settings(max_examples=200, deadline=None)
    def test_matches_enumeration_trapezoid(self, a, b, c, n, slack):
        """Exact over every point of a triangular iteration space."""
        nest = B.nest(("i", 1, n), ("j", 1, B.v("i") + slack))
        expr = B.v("i") * a + B.v("j") * b + c
        lo, hi = affine_extremes(expr, list(nest))
        values = [
            expr.evaluate(point) for point in nest.iteration_space()
        ]
        assert values, "nest unexpectedly empty"
        assert lo == min(values)
        assert hi == max(values)

    @given(coef, coef, coef, small, bound, bound)
    @settings(max_examples=200, deadline=None)
    def test_matches_enumeration_3deep(self, a, b, c, d, n1, n2):
        nest = B.nest(
            ("i", 1, n1), ("j", 1, n2), ("k", B.v("j"), B.v("j") + 2)
        )
        expr = B.v("i") * a + B.v("j") * b + B.v("k") * c + d
        lo, hi = affine_extremes(expr, list(nest))
        values = [expr.evaluate(p) for p in nest.iteration_space()]
        assert lo == min(values)
        assert hi == max(values)
