"""Tests for the enumeration oracle itself (trust but verify the judge)."""

from repro.ir import builder as B
from repro.oracle import (
    iterate_solutions,
    oracle_dependent,
    oracle_direction_vectors,
    oracle_distance_set,
    solve_system,
)
from repro.system.constraints import ConstraintSystem


class TestSystemEnumeration:
    def test_iterate_solutions(self):
        system = ConstraintSystem(("x", "y"))
        system.add([1, 1], 2)  # x + y <= 2
        system.add([-1, 0], 0)  # x >= 0
        system.add([0, -1], 0)  # y >= 0
        points = set(iterate_solutions(system, -1, 3))
        assert points == {(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (2, 0)}

    def test_solve_system_none(self):
        system = ConstraintSystem(("x",))
        system.add([1], -1)
        system.add([-1], -1)  # x <= -1 and x >= 1
        assert solve_system(system, -5, 5) is None


class TestPairOracle:
    def test_known_dependent(self):
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        assert oracle_dependent(w, nest, r, nest)

    def test_known_independent(self):
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") + 10])
        assert not oracle_dependent(w, nest, r, nest)

    def test_different_arrays_never_dependent(self):
        nest = B.nest(("i", 1, 5))
        assert not oracle_dependent(
            B.ref("a", [B.v("i")], write=True), nest,
            B.ref("b", [B.v("i")]), nest,
        )

    def test_symbol_environment(self):
        nest = B.nest(("i", 1, B.v("n")))
        w = B.ref("a", [B.v("i") + 3], write=True)
        r = B.ref("a", [B.v("i")])
        assert oracle_dependent(w, nest, r, nest, env={"n": 10})
        assert not oracle_dependent(w, nest, r, nest, env={"n": 3})

    def test_direction_vectors_by_hand(self):
        # a[i+1] vs a[i] collides at (i, i') = (k, k+1): direction '<'.
        nest = B.nest(("i", 1, 5))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        assert oracle_direction_vectors(w, nest, r, nest) == {("<",)}

    def test_distance_set_by_hand(self):
        nest = B.nest(("i", 1, 5))
        w = B.ref("a", [B.v("i") * 2], write=True)
        r = B.ref("a", [B.v("i") + 3])
        # 2i == i' + 3: (2,1),(3,3),(4,5): distances -1, 0, 1
        assert oracle_distance_set(w, nest, r, nest) == {(-1,), (0,), (1,)}

    def test_trapezoid_iteration(self):
        nest = B.nest(("i", 1, 3), ("j", 1, B.v("i")))
        w = B.ref("a", [B.v("j")], write=True)
        r = B.ref("a", [B.v("j") + 2])
        # j ranges 1..3 overall; j' + 2 in 3..5: only j=3 (i=3) matches
        assert oracle_dependent(w, nest, r, nest)
        vectors = oracle_direction_vectors(w, nest, r, nest)
        assert vectors  # some dependence
