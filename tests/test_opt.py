"""Tests for the prepass optimizations."""

import pytest

from repro.lang import parse
from repro.lang.lower import lower
from repro.opt import (
    compile_source,
    forward_substitute,
    normalize_loops,
    optimize,
    propagate_constants,
    substitute_inductions,
)
from repro.opt.rewrite import affine_to_expr, try_affine
from repro.ir.affine import AffineExpr


def _subscript_strings(source_text: str) -> list[str]:
    result = compile_source(source_text)
    out = []
    for stmt in result.program.statements:
        out.append(str(stmt.write))
        out.extend(str(r) for r in stmt.reads)
    return out


class TestRewriteHelpers:
    def test_affine_roundtrip(self):
        expr = AffineExpr(7, {"i": 2, "j": -1})
        back = try_affine(affine_to_expr(expr))
        assert back == expr

    def test_affine_roundtrip_zero(self):
        assert try_affine(affine_to_expr(AffineExpr(0))) == AffineExpr(0)

    def test_try_affine_rejects_products(self):
        program = parse("x = i * j")
        assert try_affine(program.body[0].expr) is None


class TestConstantPropagation:
    def test_simple(self):
        program = propagate_constants(
            parse("n = 100\nfor i = 1 to n do\n  a[i+n] = 0\nend")
        )
        loop = program.body[1]
        assert str(loop.upper) == "100"
        inner = loop.body[0]
        assert "100" in str(inner.target)

    def test_chained(self):
        program = propagate_constants(parse("n = 10\nm = n + 5\nx = m"))
        assert str(program.body[2].expr) == "15"

    def test_read_kills(self):
        program = propagate_constants(
            parse("n = 100\nread(n)\nfor i = 1 to n do\n  a[i] = 0\nend")
        )
        loop = program.body[2]
        assert str(loop.upper) == "n"

    def test_loop_assignment_invalidates(self):
        program = propagate_constants(
            parse("k = 1\nfor i = 1 to 5 do\n  k = k + 1\n  a[k] = 0\nend")
        )
        loop = program.body[1]
        store = loop.body[1]
        assert "k" in str(store.target)  # not folded: k varies

    def test_conditional_free_reassignment(self):
        program = propagate_constants(parse("n = 1\nn = 2\nx = n"))
        assert str(program.body[2].expr) == "2"


class TestForwardSubstitution:
    def test_affine_def_substituted(self):
        program = forward_substitute(
            parse("for i = 1 to 9 do\n  k = i + 1\n  a[k] = a[i]\nend")
        )
        loop = program.body[0]
        store = loop.body[1]
        assert "i" in str(store.target)
        assert "k" not in str(store.target)

    def test_loop_varying_not_substituted_across_iterations(self):
        # k = k + 1 is not affine in stable names: invalidated.
        program = forward_substitute(
            parse("k = 0\nfor i = 1 to 9 do\n  k = k + 1\n  a[k] = 0\nend")
        )
        loop = program.body[1]
        store = loop.body[1]
        assert "k" in str(store.target)

    def test_outer_loop_var_stays_valid_inside_inner(self):
        program = forward_substitute(
            parse(
                "for i = 1 to 9 do\n"
                "  k = i + 2\n"
                "  for j = 1 to 9 do\n"
                "    a[k][j] = 0\n"
                "  end\n"
                "end"
            )
        )
        inner_store = program.body[0].body[1].body[0]
        assert "k" not in str(inner_store.target)
        assert "i" in str(inner_store.target)


class TestInductionVariables:
    def test_paper_section8_example(self):
        subs = _subscript_strings(
            "n = 100\n"
            "iz = 0\n"
            "for i = 1 to 10 do\n"
            "  iz = iz + 2\n"
            "  a[iz + n] = a[iz + 2*n + 1] + 3\n"
            "end for"
        )
        assert subs == ["a[2*i + 100]", "a[2*i + 201]"]

    def test_pre_increment_use(self):
        subs = _subscript_strings(
            "iz = 5\n"
            "for i = 1 to 10 do\n"
            "  a[iz] = 0\n"
            "  iz = iz + 3\n"
            "end"
        )
        # At iteration i (1-based), before increment: 5 + 3*(i-1).
        assert subs == ["a[3*i + 2]"]

    def test_post_loop_value(self):
        result = compile_source(
            "iz = 0\n"
            "for i = 1 to 10 do\n"
            "  iz = iz + 1\n"
            "end\n"
            "for j = 1 to 5 do\n"
            "  a[iz + j] = 0\n"
            "end"
        )
        (stmt,) = result.program.statements
        assert str(stmt.write) == "a[j + 10]"

    def test_negative_stride(self):
        subs = _subscript_strings(
            "k = 100\n"
            "for i = 1 to 10 do\n"
            "  k = k - 2\n"
            "  a[k] = 0\n"
            "end"
        )
        assert subs == ["a[-2*i + 100]"]

    def test_symbolic_base_value(self):
        subs = _subscript_strings(
            "read(m)\n"
            "iz = m\n"
            "for i = 1 to 10 do\n"
            "  iz = iz + 1\n"
            "  a[iz] = 0\n"
            "end"
        )
        assert subs == ["a[i + m]"]

    def test_nonlinear_update_rejected(self):
        source = parse(
            "iz = 1\n"
            "for i = 1 to 10 do\n"
            "  iz = iz * 2\n"
            "  a[iz] = 0\n"
            "end"
        )
        optimized = substitute_inductions(source)
        from repro.lang.errors import LowerError

        with pytest.raises(LowerError):
            lower(optimized)


class TestNormalization:
    def test_step_two(self):
        program = normalize_loops(
            parse("for i = 1 to 20 step 2 do\n  a[i] = 0\nend")
        )
        (loop,) = program.body
        assert loop.step == 1
        assert str(loop.lower) == "0" and str(loop.upper) == "9"
        # subscript rewritten to 1 + 2*k
        store = loop.body[0]
        assert "2" in str(store.target)

    def test_downward_loop(self):
        program = normalize_loops(
            parse("for i = 10 to 1 step -3 do\n  a[i] = 0\nend")
        )
        (loop,) = program.body
        assert loop.step == 1
        assert str(loop.upper) == "3"  # i in {10, 7, 4, 1}: 4 trips

    def test_empty_loop(self):
        program = normalize_loops(
            parse("for i = 10 to 1 step 2 do\n  a[i] = 0\nend")
        )
        (loop,) = program.body
        assert str(loop.upper) == "-1"  # zero trips

    def test_step_one_untouched(self):
        source = parse("for i = 1 to n do\n  a[i] = 0\nend")
        program = normalize_loops(source)
        (loop,) = program.body
        assert loop.var == "i"

    def test_symbolic_span_left_alone(self):
        program = normalize_loops(
            parse("for i = 1 to n step 2 do\n  a[i] = 0\nend")
        )
        (loop,) = program.body
        assert loop.step == 2  # cannot normalize; lowering will report

    def test_normalized_semantics_preserved(self):
        """Addresses touched by the strided loop match the normalized one."""
        source = parse("for i = 3 to 17 step 4 do\n  a[i] = 0\nend")
        normalized = normalize_loops(source)
        original_addrs = list(range(3, 18, 4))
        (loop,) = normalized.body
        lo = int(str(loop.lower))
        hi = int(str(loop.upper))
        result = lower(normalized)
        (stmt,) = result.program.statements
        addrs = [
            stmt.write.subscripts[0].evaluate({loop.var: k})
            for k in range(lo, hi + 1)
        ]
        assert addrs == original_addrs


class TestPipeline:
    def test_optimize_composes(self):
        program = optimize(
            parse(
                "n = 50\n"
                "iz = 0\n"
                "for i = 1 to 10 step 2 do\n"
                "  iz = iz + 1\n"
                "  a[iz + n] = 0\n"
                "end"
            )
        )
        result = lower(program)
        (stmt,) = result.program.statements
        # 5 iterations of the normalized loop; iz = k+1 for k = 0..4.
        assert str(stmt.write) == "a[i__n + 51]"

    def test_end_to_end_dependence(self):
        from repro.core.analyzer import DependenceAnalyzer
        from repro.ir.program import reference_pairs

        result = compile_source(
            "read(n)\n"
            "for i = 1 to n do\n"
            "  a[i + 1] = a[i]\n"
            "end"
        )
        analyzer = DependenceAnalyzer()
        s1, s2 = reference_pairs(result.program)[0]
        res = analyzer.analyze_sites(s1, s2)
        assert res.dependent
