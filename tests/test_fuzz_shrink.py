"""Tests for the counterexample shrinker."""

from repro.fuzz.generator import FuzzCase, generate_case
from repro.fuzz.shrink import case_cost, shrink_case
from repro.ir import builder as B
from repro.ir.loops import LoopNest
from repro.oracle import oracle_dependent


def _case(ref1, nest1, ref2, nest2, env=None):
    return FuzzCase(
        tier="constant",
        seed=0,
        index=0,
        ref1=ref1,
        nest1=nest1,
        ref2=ref2,
        nest2=nest2,
        env=dict(env or {}),
    )


class TestCaseCost:
    def test_fewer_loops_is_cheaper(self):
        deep = _case(
            B.ref("a", [B.v("i")], write=True),
            B.nest(("i", 0, 3), ("j", 0, 3)),
            B.ref("a", [B.v("i") + 1]),
            B.nest(("i", 0, 3), ("j", 0, 3)),
        )
        shallow = _case(
            B.ref("a", [B.v("i")], write=True),
            B.nest(("i", 0, 3)),
            B.ref("a", [B.v("i") + 1]),
            B.nest(("i", 0, 3)),
        )
        assert case_cost(shallow) < case_cost(deep)

    def test_smaller_constants_are_cheaper(self):
        big = _case(
            B.ref("a", [B.v("i") + 9], write=True),
            B.nest(("i", 0, 3)),
            B.ref("a", [B.v("i")]),
            B.nest(("i", 0, 3)),
        )
        small = _case(
            B.ref("a", [B.v("i") + 1], write=True),
            B.nest(("i", 0, 3)),
            B.ref("a", [B.v("i")]),
            B.nest(("i", 0, 3)),
        )
        assert case_cost(small) < case_cost(big)

    def test_symbols_cost(self):
        plain = _case(
            B.ref("a", [B.v("i")], write=True),
            B.nest(("i", 0, 3)),
            B.ref("a", [B.v("i")]),
            B.nest(("i", 0, 3)),
        )
        symbolic = _case(
            plain.ref1, plain.nest1, plain.ref2, plain.nest2, env={"n": 3}
        )
        assert case_cost(plain) < case_cost(symbolic)


class TestShrinking:
    def test_preserves_failing_property(self):
        # "Property": the two references still collide somewhere.  The
        # shrinker must return a smaller case that still collides.
        case = _case(
            B.ref("a", [B.v("i") + B.v("j")], write=True),
            B.nest(("i", 0, 4), ("j", 0, 3)),
            B.ref("a", [B.v("i") + 2]),
            B.nest(("i", 0, 4), ("j", 0, 3)),
        )

        def still_collides(candidate):
            return oracle_dependent(
                candidate.ref1,
                candidate.nest1,
                candidate.ref2,
                candidate.nest2,
                candidate.env,
            )

        assert still_collides(case)
        small = shrink_case(case, still_collides)
        assert still_collides(small)
        assert case_cost(small) < case_cost(case)

    def test_drops_irrelevant_inner_loop(self):
        case = _case(
            B.ref("a", [B.v("i")], write=True),
            B.nest(("i", 0, 3), ("j", 0, 3)),
            B.ref("a", [B.v("i")]),
            B.nest(("i", 0, 3), ("j", 0, 3)),
        )

        def uses_i(candidate):
            return "i" in (
                candidate.ref1.variables() | candidate.ref2.variables()
            )

        small = shrink_case(case, uses_i)
        # The j loops served no purpose: both should be gone.
        assert small.nest1.depth + small.nest2.depth <= 2

    def test_drops_symbol_when_irrelevant(self):
        case = _case(
            B.ref("a", [B.v("i") + B.v("n")], write=True),
            B.nest(("i", 0, 3)),
            B.ref("a", [B.v("i")]),
            B.nest(("i", 0, 3)),
            env={"n": 2},
        )
        small = shrink_case(case, lambda c: True)
        assert small.env == {}
        assert not small.has_symbols

    def test_never_returns_non_failing(self):
        case = _case(
            B.ref("a", [B.v("i") * 2], write=True),
            B.nest(("i", 0, 5)),
            B.ref("a", [B.v("i") * 2 + 1]),
            B.nest(("i", 0, 5)),
        )

        def never(candidate):
            return False

        assert shrink_case(case, never) is case

    def test_respects_max_evals(self):
        case = generate_case(0, 3, "coupled")
        calls = []

        def count(candidate):
            calls.append(1)
            return True

        shrink_case(case, count, max_evals=5)
        assert len(calls) <= 5

    def test_deterministic(self):
        case = generate_case(1, 8, "coupled")

        def predicate(candidate):
            return candidate.ref1.rank >= 1

        a = shrink_case(case, predicate)
        b = shrink_case(case, predicate)
        assert a.to_dict() == b.to_dict()

    def test_raising_predicate_treated_as_pass(self):
        case = _case(
            B.ref("a", [B.v("i") + 3], write=True),
            B.nest(("i", 0, 3)),
            B.ref("a", [B.v("i")]),
            B.nest(("i", 0, 3)),
        )

        def explodes(candidate):
            raise RuntimeError("oracle crashed")

        # Shrinker must survive and return the original case.
        assert shrink_case(case, explodes) is case

    def test_single_iteration_pinning(self):
        case = _case(
            B.ref("a", [B.v("i")], write=True),
            B.nest(("i", 0, 7)),
            B.ref("a", [B.v("i")]),
            B.nest(("i", 0, 7)),
        )
        small = shrink_case(case, lambda c: True)
        # Everything is allowed, so the result collapses to a minimum:
        # no bound spread left to shrink.
        for nest in (small.nest1, small.nest2):
            assert isinstance(nest, LoopNest)
            for loop in nest:
                assert loop.upper.constant - loop.lower.constant <= 0
