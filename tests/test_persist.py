"""Tests for persistent memoization (section 5's cross-compilation idea)."""

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.core.persist import dumps, load_memoizer, loads, save_memoizer
from repro.ir import builder as B
from repro.perfect import generate_program, PROGRAM_SPECS


def _run(queries, memoizer):
    analyzer = DependenceAnalyzer(memoizer=memoizer, want_witness=False)
    for query in queries:
        analyzer.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
    return analyzer


class TestRoundTrip:
    def test_json_round_trip_preserves_entries(self):
        spec = PROGRAM_SPECS[1]  # CS: has svpc and acyclic cases
        queries = generate_program(spec)
        memo = Memoizer()
        _run(queries, memo)
        restored = loads(dumps(memo))
        assert len(restored.no_bounds) == len(memo.no_bounds)
        assert len(restored.with_bounds) == len(memo.with_bounds)
        assert restored.improved == memo.improved

    def test_restored_table_serves_all_hits(self):
        """A second 'compilation' with the saved table runs zero tests."""
        spec = PROGRAM_SPECS[1]
        queries = generate_program(spec)
        memo = Memoizer()
        first = _run(queries, memo)
        assert sum(first.stats.decided_by.values()) > 0

        second = _run(queries, loads(dumps(memo)))
        assert sum(second.stats.decided_by.values()) == 0
        assert second.stats.memo_hits_bounds > 0

    def test_restored_verdicts_identical(self):
        spec = PROGRAM_SPECS[5]  # NA: all four buckets
        queries = generate_program(spec)
        memo = Memoizer()
        fresh = DependenceAnalyzer(want_witness=False)
        warmed = DependenceAnalyzer(
            memoizer=loads(dumps(_run_and_return_memo(queries))),
            want_witness=False,
        )
        for query in queries[:200]:
            a = fresh.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
            b = warmed.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
            assert a.dependent == b.dependent
            assert a.distance == b.distance

    def test_directions_persist(self):
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        original = analyzer.directions(w, nest, r, nest)

        warmed = DependenceAnalyzer(memoizer=loads(dumps(memo)))
        again = warmed.directions(w, nest, r, nest)
        assert again.from_memo
        assert again.vectors == original.vectors

    def test_file_round_trip(self, tmp_path):
        memo = Memoizer()
        nest = B.nest(("i", 1, 10))
        analyzer = DependenceAnalyzer(memoizer=memo)
        analyzer.analyze(
            B.ref("a", [B.v("i") * 2], write=True), nest,
            B.ref("a", [B.v("i") * 2 + 1]), nest,
        )
        path = tmp_path / "memo.json"
        save_memoizer(memo, path)
        restored = load_memoizer(path)
        warmed = DependenceAnalyzer(memoizer=restored)
        result = warmed.analyze(
            B.ref("a", [B.v("i") * 2], write=True), nest,
            B.ref("a", [B.v("i") * 2 + 1]), nest,
        )
        assert result.independent
        assert result.from_memo

    def test_empty_basis_survives_round_trip(self):
        """Regression: a dependent GCD entry with an *empty* basis
        (unique solution, e.g. a[i] vs a[5]) must not decay to None in
        JSON — rebuilding the factorization after a no-bounds hit
        asserted on the corrupted entry."""
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.c(5)])
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo)
        original = analyzer.analyze(w, nest, r, nest)
        assert original.dependent

        warmed = DependenceAnalyzer(memoizer=loads(dumps(memo)))
        # Different bounds: with-bounds key misses, the no-bounds hit
        # re-applies the cached (empty-basis) factorization.
        nest2 = B.nest(("i", 1, 20))
        result = warmed.analyze(w, nest2, r, nest2)
        assert result.dependent

    def test_version_check(self):
        import json

        import pytest

        blob = json.loads(dumps(Memoizer()))
        blob["version"] = 99
        with pytest.raises(ValueError):
            loads(json.dumps(blob))


def _run_and_return_memo(queries):
    memo = Memoizer()
    _run(queries, memo)
    return memo


class TestLoadMemoizerSafe:
    """Corruption costs warmth, never availability (serving + CLI path)."""

    def _saved_cache(self, tmp_path):
        from repro.core.persist import save_memoizer

        spec = PROGRAM_SPECS[1]
        memo = _run_and_return_memo(generate_program(spec))
        path = tmp_path / "cache.json"
        save_memoizer(memo, path)
        return path, memo

    def test_good_file_loads(self, tmp_path):
        from repro.core.persist import load_memoizer_safe

        path, memo = self._saved_cache(tmp_path)
        restored = load_memoizer_safe(path)
        assert restored is not None
        assert len(restored.no_bounds) == len(memo.no_bounds)

    def test_missing_file_is_none_without_warning(self, tmp_path):
        import warnings

        from repro.core.persist import load_memoizer_safe

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_memoizer_safe(tmp_path / "absent.json") is None

    def test_truncated_json_warns_and_returns_none(self, tmp_path):
        """Regression: a half-written cache must not crash the load."""
        import pytest

        from repro.core.persist import load_memoizer_safe

        path, _ = self._saved_cache(tmp_path)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # torn mid-write
        with pytest.warns(RuntimeWarning, match="warm-start"):
            assert load_memoizer_safe(path) is None

    def test_wrong_schema_warns_and_returns_none(self, tmp_path):
        import json

        import pytest

        from repro.core.persist import load_memoizer_safe

        path = tmp_path / "cache.json"
        path.write_text(json.dumps({"version": 99, "tables": []}))
        with pytest.warns(RuntimeWarning):
            assert load_memoizer_safe(path) is None

    def test_non_json_garbage(self, tmp_path):
        import pytest

        from repro.core.persist import load_memoizer_safe

        path = tmp_path / "cache.json"
        path.write_bytes(b"\x00\xffnot json at all")
        with pytest.warns(RuntimeWarning):
            assert load_memoizer_safe(path) is None
