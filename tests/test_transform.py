"""Tests for Extended GCD preprocessing and the change of variables."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import builder as B
from repro.system.depsystem import build_problem
from repro.system.transform import gcd_transform

small = st.integers(min_value=-6, max_value=6)


def _problem(sub1, sub2, lo=1, hi=10, depth=1):
    loops = [(f"i{k}", lo, hi) for k in range(depth)]
    nest = B.nest(*loops)
    return build_problem(
        B.ref("a", sub1, write=True), nest, B.ref("a", sub2), nest
    )


class TestGcdDecision:
    def test_gcd_independent(self):
        # 2i = 2i' + 1 has no integer solution.
        problem = _problem([B.v("i0") * 2], [B.v("i0") * 2 + 1])
        assert gcd_transform(problem).independent

    def test_gcd_dependent(self):
        problem = _problem([B.v("i0")], [B.v("i0") + 10])
        outcome = gcd_transform(problem)
        assert not outcome.independent

    def test_classic_gcd_divisibility(self):
        # 6i = 3i' + 4: gcd(6,3)=3 does not divide 4 -> independent.
        problem = _problem([B.v("i0") * 6], [B.v("i0") * 3 + 4])
        assert gcd_transform(problem).independent
        # 6i = 3i' + 3 is solvable.
        problem2 = _problem([B.v("i0") * 6], [B.v("i0") * 3 + 3])
        assert not gcd_transform(problem2).independent

    def test_inconsistent_multidim(self):
        # Dimensions demand i - i' = 0 and i - i' = 1 simultaneously.
        problem = _problem(
            [B.v("i0"), B.v("i0")], [B.v("i0"), B.v("i0") + 1]
        )
        assert gcd_transform(problem).independent


class TestChangeOfVariables:
    def test_paper_example_constraints(self):
        # a[i+10] = a[i], 1 <= i <= 10: (i, i') = (t1, t1 + 10); the
        # transformed constraints are 1 <= t1 <= 10 and 1 <= t1+10 <= 10.
        problem = _problem([B.v("i0") + 10], [B.v("i0")])
        outcome = gcd_transform(problem)
        transformed = outcome.transformed
        assert transformed.n_free == 1
        # Witness check: all x recovered from t satisfy the equations.
        for t in range(-20, 20):
            x = transformed.x_value([t])
            for coeffs, rhs in problem.equations:
                assert sum(c * v for c, v in zip(coeffs, x)) == rhs

    def test_variable_count_reduction(self):
        # Each independent equation eliminates one variable.
        problem = _problem(
            [B.v("i0"), B.v("i1")],
            [B.v("i1") + 1, B.v("i0") + 2],
            depth=2,
        )
        outcome = gcd_transform(problem)
        # 4 variables, 2 independent equations -> 2 free.
        assert outcome.transformed.n_free == 2

    def test_constraint_count_reduction(self):
        # The transformed system has exactly 2 * loops constraints;
        # the equalities are folded away (paper section 3.1).
        problem = _problem([B.v("i0") + 10], [B.v("i0")])
        outcome = gcd_transform(problem)
        assert len(outcome.transformed.system.constraints) == 4

    @given(
        st.integers(1, 3),
        small,
        small,
        small,
        small,
    )
    @settings(max_examples=150, deadline=None)
    def test_solution_space_parametrization(self, depth, a1, c1, a2, c2):
        """Every t maps to an x satisfying the equalities (when solvable)."""
        subs1 = [B.v("i0") * a1 + c1]
        subs2 = [B.v("i0") * a2 + c2]
        problem = _problem(subs1, subs2, depth=depth)
        outcome = gcd_transform(problem)
        if outcome.independent:
            # Cross-check: no small integer solution exists.
            for i in range(-8, 9):
                for i2 in range(-8, 9):
                    assert a1 * i + c1 != a2 * i2 + c2, (
                        f"GCD claimed independent but i={i}, i'={i2} solves it"
                    )
            return
        transformed = outcome.transformed
        span = 3 if transformed.n_free <= 3 else 1
        for t_point in _grid(transformed.n_free, -span, span):
            x = transformed.x_value(list(t_point))
            for coeffs, rhs in problem.equations:
                assert sum(c * v for c, v in zip(coeffs, x)) == rhs

    @given(small, small, small)
    @settings(max_examples=100)
    def test_transformed_constraints_equivalent(self, shift, lo, hi):
        """x satisfies the bounds iff its t-preimage satisfies the system."""
        if lo > hi:
            lo, hi = hi, lo
        nest = B.nest(("i", lo, hi))
        problem = build_problem(
            B.ref("a", [B.v("i") + shift], write=True),
            nest,
            B.ref("a", [B.v("i")]),
            nest,
        )
        outcome = gcd_transform(problem)
        assert not outcome.independent  # coefficient 1 always solvable
        transformed = outcome.transformed
        for t in range(lo - abs(shift) - 2, hi + abs(shift) + 3):
            x = transformed.x_value([t])
            assert problem.bounds.evaluate(x) == transformed.system.evaluate(
                (t,)
            )


def _grid(dims: int, lo: int, hi: int):
    if dims == 0:
        yield ()
        return
    for head in range(lo, hi + 1):
        for tail in _grid(dims - 1, lo, hi):
            yield (head,) + tail
