"""Coverage for result types, stats merging and small harness surfaces."""

import pytest

from repro.core.result import DependenceResult, DirectionResult
from repro.core.stats import AnalyzerStats
from repro.deptests.base import TestResult, Verdict
from repro.harness.cli import main as harness_main
from repro.harness.timing import time_full_pipeline
from repro.system.constraints import Interval


class TestDependenceResult:
    def test_independent_property(self):
        result = DependenceResult(dependent=False, decided_by="gcd")
        assert result.independent
        assert not DependenceResult(dependent=True, decided_by="svpc").independent


class TestDirectionResult:
    def test_elementary_expansion(self):
        result = DirectionResult(
            vectors=frozenset({("*", "<")}), n_common=2
        )
        assert result.elementary_vectors() == {
            ("<", "<"), ("=", "<"), (">", "<"),
        }
        assert result.count_elementary() == 3

    def test_empty_is_independent(self):
        result = DirectionResult(vectors=frozenset(), n_common=1)
        assert result.independent and not result.dependent
        assert result.count_elementary() == 0

    def test_no_common_loops(self):
        result = DirectionResult(vectors=frozenset({()}), n_common=0)
        assert result.dependent
        assert result.elementary_vectors() == {()}


class TestTestResult:
    def test_dependent_requires_witness(self):
        with pytest.raises(ValueError):
            TestResult(Verdict.DEPENDENT, "svpc")

    def test_verdict_decided(self):
        assert Verdict.INDEPENDENT.decided
        assert Verdict.DEPENDENT.decided
        assert not Verdict.NOT_APPLICABLE.decided
        assert not Verdict.UNKNOWN.decided


class TestInterval:
    def test_tighten(self):
        interval = Interval()
        interval.tighten_lo(3)
        interval.tighten_hi(7)
        interval.tighten_lo(1)  # looser: ignored
        interval.tighten_hi(9)  # looser: ignored
        assert (interval.lo, interval.hi) == (3, 7)
        assert interval.pick() == 3

    def test_pick_prefers_finite(self):
        upper_only = Interval()
        upper_only.tighten_hi(-2)
        assert upper_only.pick() == -2


class TestStatsMerge:
    def test_merge_accumulates(self):
        a = AnalyzerStats()
        b = AnalyzerStats()
        a.total_queries = 3
        a.record_decision("svpc", independent=True)
        b.total_queries = 4
        b.record_decision("svpc", independent=False)
        b.record_direction_test("acyclic", independent=True)
        a.merge(b)
        assert a.total_queries == 7
        assert a.decided_by["svpc"] == 2
        assert a.direction_tests["acyclic"] == 1
        assert a.outcomes[("svpc", "independent")] == 1
        assert a.outcomes[("svpc", "dependent")] == 1

    def test_unique_case_properties(self):
        stats = AnalyzerStats()
        stats.memo_queries_bounds = 10
        stats.memo_hits_bounds = 7
        assert stats.unique_cases_bounds == 3


class TestHarnessSurfaces:
    def test_costs_command(self, capsys):
        assert harness_main(["costs"]) == 0
        out = capsys.readouterr().out
        assert "usec/test" in out
        assert "fourier_motzkin" in out

    def test_time_full_pipeline(self):
        per_call = time_full_pipeline(repeats=2)
        assert per_call > 0
