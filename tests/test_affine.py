"""Tests for affine expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.affine import AffineExpr, const, var

names = st.sampled_from(["i", "j", "k", "n", "m"])
coeffs = st.integers(min_value=-50, max_value=50)


def exprs():
    return st.builds(
        AffineExpr,
        coeffs,
        st.dictionaries(names, coeffs, max_size=4),
    )


class TestConstruction:
    def test_variable(self):
        e = var("i")
        assert e.coeff("i") == 1
        assert e.constant == 0

    def test_zero_coeffs_dropped(self):
        e = AffineExpr(3, {"i": 0, "j": 2})
        assert e.variables() == frozenset({"j"})

    def test_of(self):
        assert AffineExpr.of(5) == const(5)
        e = var("i")
        assert AffineExpr.of(e) is e


class TestArithmetic:
    def test_add(self):
        e = var("i") + var("j") + 3
        assert e.coeff("i") == 1 and e.coeff("j") == 1 and e.constant == 3

    def test_add_cancels(self):
        e = var("i") - var("i")
        assert e.is_constant and e.constant == 0

    def test_mul(self):
        e = (var("i") + 2) * 3
        assert e.coeff("i") == 3 and e.constant == 6

    def test_rmul_and_rsub(self):
        e = 3 * var("i")
        assert e.coeff("i") == 3
        e2 = 10 - var("i")
        assert e2.coeff("i") == -1 and e2.constant == 10

    def test_mul_by_constant_expr(self):
        assert var("i") * const(4) == var("i") * 4

    def test_mul_nonlinear_rejected(self):
        with pytest.raises(ValueError):
            var("i") * var("j")

    @given(exprs(), exprs())
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(exprs())
    def test_neg_involution(self, a):
        assert -(-a) == a

    @given(exprs(), coeffs)
    def test_scaling_distributes(self, a, k):
        env = {n: 3 for n in a.variables()}
        assert (a * k).evaluate(env) == k * a.evaluate(env)


class TestSubstitution:
    def test_substitute_variable(self):
        e = var("i") * 2 + var("j")
        out = e.substitute("i", var("k") + 1)
        assert out == var("k") * 2 + var("j") + 2

    def test_substitute_constant(self):
        e = var("i") + 5
        assert e.substitute("i", 3) == const(8)

    def test_substitute_absent_is_identity(self):
        e = var("i")
        assert e.substitute("z", 100) is e

    @given(exprs(), coeffs)
    def test_substitution_consistent_with_evaluation(self, e, value):
        if "i" not in e.variables():
            return
        env = {n: 2 for n in e.variables()}
        env["i"] = value
        substituted = e.substitute("i", value)
        env2 = {n: 2 for n in substituted.variables()}
        assert substituted.evaluate(env2) == e.evaluate(env)


class TestRename:
    def test_rename(self):
        e = var("i") + var("j")
        out = e.rename({"i": "i'"})
        assert out.variables() == frozenset({"i'", "j"})

    def test_rename_collision_merges(self):
        e = var("i") + var("j")
        out = e.rename({"i": "j"})
        assert out.coeff("j") == 2


class TestCoefficients:
    def test_order(self):
        e = var("j") * 2 - var("i") + 7
        assert e.coefficients(["i", "j", "k"]) == [-1, 2, 0]

    def test_missing_variable_rejected(self):
        with pytest.raises(ValueError):
            var("z").coefficients(["i"])


class TestFormatting:
    def test_str_constant(self):
        assert str(const(0)) == "0"
        assert str(const(-3)) == "-3"

    def test_str_mixed(self):
        text = str(var("i") * 2 - var("j") + 1)
        assert "2*i" in text and "j" in text

    def test_hash_equal_exprs(self):
        assert hash(var("i") + 1) == hash(AffineExpr(1, {"i": 1}))

    def test_eq_with_int(self):
        assert const(5) == 5
        assert not (var("i") == 5)
