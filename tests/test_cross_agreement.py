"""Cross-test agreement: every applicable test gives the same verdict.

The cascade's correctness argument rests on each test being exact for
its input class; since Fourier-Motzkin (with branch-and-bound) is exact
on everything, every specialized test must agree with it wherever both
apply.  These properties fuzz that pairwise agreement directly on
random constraint systems — independent of the oracle-based tests,
which go through the full analyzer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deptests.acyclic import AcyclicTest
from repro.deptests.base import Verdict
from repro.deptests.fourier_motzkin import FourierMotzkinTest
from repro.deptests.loop_residue import LoopResidueTest
from repro.deptests.svpc import SvpcTest
from repro.system.constraints import ConstraintSystem

small = st.integers(min_value=-8, max_value=8)


def _boxed(system: ConstraintSystem, radius: int = 7) -> ConstraintSystem:
    """Box every variable so all tests see a bounded system."""
    out = system.copy()
    for var in range(system.n_vars):
        row_hi = [0] * system.n_vars
        row_hi[var] = 1
        row_lo = [0] * system.n_vars
        row_lo[var] = -1
        out.add(row_hi, radius)
        out.add(row_lo, radius)
    return out


class TestSvpcVsFourierMotzkin:
    @given(
        st.lists(
            st.tuples(st.integers(0, 2), small.filter(bool), small),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_agreement(self, rows):
        system = ConstraintSystem(("a", "b", "c"))
        for var, coeff, bound in rows:
            coeffs = [0, 0, 0]
            coeffs[var] = coeff
            system.add(coeffs, bound)
        system = _boxed(system)
        svpc = SvpcTest().run(system)
        fm = FourierMotzkinTest().run(system)
        assert svpc.verdict is not Verdict.NOT_APPLICABLE
        assert svpc.verdict == fm.verdict


class TestResidueVsFourierMotzkin:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    [(1, -1, 0), (-1, 1, 0), (0, 1, -1), (0, -1, 1),
                     (1, 0, -1), (-1, 0, 1), (1, 0, 0), (0, -1, 0)]
                ),
                st.integers(-10, 10),
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_agreement(self, rows):
        system = ConstraintSystem(("a", "b", "c"))
        for coeffs, bound in rows:
            system.add(list(coeffs), bound)
        system = _boxed(system)
        residue = LoopResidueTest().run(system)
        fm = FourierMotzkinTest().run(system)
        assert residue.verdict is not Verdict.NOT_APPLICABLE
        assert residue.verdict == fm.verdict


class TestAcyclicVsFourierMotzkin:
    @given(
        st.lists(
            st.tuples(
                st.tuples(small, small, small).filter(lambda c: any(c)),
                st.integers(-12, 12),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_agreement_when_applicable(self, rows):
        system = ConstraintSystem(("a", "b", "c"))
        for coeffs, bound in rows:
            system.add(list(coeffs), bound)
        system = _boxed(system)
        acyclic = AcyclicTest().run(system)
        if acyclic.verdict is Verdict.NOT_APPLICABLE:
            return
        fm = FourierMotzkinTest().run(system)
        assert acyclic.verdict == fm.verdict

    @given(
        st.lists(
            st.tuples(
                st.tuples(small, small, small).filter(lambda c: any(c)),
                st.integers(-12, 12),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=300, deadline=None)
    def test_partial_elimination_preserves_satisfiability(self, rows):
        """FM on the Acyclic residual == FM on the original system."""
        system = ConstraintSystem(("a", "b", "c"))
        for coeffs, bound in rows:
            system.add(list(coeffs), bound)
        system = _boxed(system)
        elimination = AcyclicTest().eliminate(system)
        if elimination.residual is None:
            return
        fm_full = FourierMotzkinTest().run(system)
        fm_residual = FourierMotzkinTest().run(elimination.residual)
        assert fm_full.verdict == fm_residual.verdict
        if fm_residual.verdict is Verdict.DEPENDENT:
            witness = elimination.complete_witness(fm_residual.witness)
            assert system.evaluate(witness)
