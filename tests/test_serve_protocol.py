"""Tests for the serving wire protocol (repro.serve.protocol)."""

import json

import pytest

from repro.api import DependenceReport
from repro.serve import protocol
from repro.serve.protocol import ErrorCode, ProtocolError


class TestRequestCodec:
    def test_round_trip(self):
        line = protocol.encode_request(
            "analyze", {"source": "x = 1\n", "pair": 0}, request_id=42
        )
        assert line.endswith(b"\n")
        request = protocol.decode_request(line)
        assert request.id == 42
        assert request.op == "analyze"
        assert request.params == {"source": "x = 1\n", "pair": 0}
        assert request.version == protocol.PROTOCOL_VERSION

    def test_defaults(self):
        request = protocol.decode_request(b'{"v": 1, "op": "health"}')
        assert request.id is None
        assert request.params == {}

    def test_invalid_json_is_parse_error(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b"{nope")
        assert exc.value.code == ErrorCode.PARSE

    def test_non_object_is_parse_error(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b"[1, 2]")
        assert exc.value.code == ErrorCode.PARSE

    def test_version_mismatch_salvages_id(self):
        line = json.dumps({"v": 99, "id": 7, "op": "health"}).encode()
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(line)
        assert exc.value.code == ErrorCode.VERSION
        assert exc.value.request_id == 7

    def test_missing_op(self):
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(b'{"v": 1, "id": 1}')
        assert exc.value.code == ErrorCode.BAD_REQUEST

    def test_unknown_op(self):
        line = json.dumps({"v": 1, "id": 1, "op": "frobnicate"}).encode()
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(line)
        assert exc.value.code == ErrorCode.UNSUPPORTED

    def test_params_must_be_object(self):
        line = json.dumps({"v": 1, "op": "analyze", "params": [1]}).encode()
        with pytest.raises(ProtocolError) as exc:
            protocol.decode_request(line)
        assert exc.value.code == ErrorCode.BAD_REQUEST


class TestResponseCodec:
    def test_ok_round_trip(self):
        response = protocol.ok_response(3, {"dependent": False})
        blob = protocol.decode_response(protocol.encode_response(response))
        assert blob == {"id": 3, "ok": True, "result": {"dependent": False}}

    def test_error_round_trip(self):
        response = protocol.error_response(
            None, ErrorCode.OVERLOADED, "try later"
        )
        blob = protocol.decode_response(protocol.encode_response(response))
        assert blob["ok"] is False
        assert blob["error"]["code"] == "overloaded"

    def test_error_codes_are_typed(self):
        with pytest.raises(AssertionError):
            protocol.error_response(None, "made_up_code", "nope")

    def test_malformed_response_line(self):
        with pytest.raises(ProtocolError):
            protocol.decode_response(b'{"id": 1}')

    def test_canonical_json_is_deterministic(self):
        a = protocol.canonical_json({"b": 1, "a": [2, 3]})
        b = protocol.canonical_json({"a": [2, 3], "b": 1})
        assert a == b
        assert " " not in a


class TestWireReport:
    def _report(self, **overrides):
        base = dict(
            ref1="a[i]",
            ref2="a[i - 1]",
            dependent=True,
            decided_by="svpc",
            exact=True,
            from_memo=True,
            distance=(1,),
            witness=(2,),
            directions=frozenset({("<",)}),
            n_common=1,
            deduped=True,
        )
        base.update(overrides)
        return DependenceReport(**base)

    def test_serving_state_is_excluded(self):
        """Warm and cold answers must encode identically: no memo flags,
        no dedup flags, no witness (an arbitrary representative)."""
        wire = protocol.report_to_wire(self._report())
        assert "from_memo" not in wire
        assert "deduped" not in wire
        assert "witness" not in wire

    def test_memo_state_does_not_change_encoding(self):
        cold = protocol.report_to_wire(
            self._report(from_memo=False, deduped=False)
        )
        warm = protocol.report_to_wire(
            self._report(from_memo=True, deduped=True)
        )
        assert cold == warm

    def test_directions_are_sorted_lists(self):
        wire = protocol.report_to_wire(
            self._report(directions=frozenset({(">",), ("<",), ("=",)}))
        )
        assert wire["directions"] == [["<"], ["="], [">"]]

    def test_independent_pair(self):
        wire = protocol.report_to_wire(
            self._report(
                dependent=False,
                distance=None,
                witness=None,
                directions=None,
            )
        )
        assert wire["dependent"] is False
        assert wire["distance"] is None
        assert wire["directions"] is None
        assert wire["degraded"] is False


class TestDegradedReport:
    def test_is_the_lattice_top(self):
        """Dependent under every direction: conservative for any query."""
        wire = protocol.degraded_report("a[i][j]", "a[i][j + 1]", 2)
        assert wire["dependent"] is True
        assert wire["degraded"] is True
        assert wire["exact"] is False
        assert wire["decided_by"] == "deadline"
        assert wire["directions"] == [["*", "*"]]

    def test_no_common_loops(self):
        wire = protocol.degraded_report("a[1]", "a[2]", 0)
        assert wire["directions"] == [[]]

    def test_without_directions(self):
        wire = protocol.degraded_report("a[i]", "a[i]", 1, want_directions=False)
        assert wire["directions"] is None
