"""Tests for the unified client (repro.serve.client.Client).

One ``Client`` class, three endpoint schemes — ``tcp://`` (a bare
worker), ``cluster://`` (a router, verified via the protocol-v2
capability frame) and ``stdio:`` (a private child daemon) — with
identical call/call_many/analyze semantics.  ``ServeClient`` and
``repro.api.connect()`` remain as the backward-compatible spellings
(the latter deprecated).
"""

import pytest

from repro.serve.client import Client, ServeClient, ServeError, parse_endpoint

from tests.test_serve_server import SOURCE, _RunningServer


class TestParseEndpoint:
    def test_tcp(self):
        assert parse_endpoint("tcp://127.0.0.1:4733") == ("tcp", "127.0.0.1", 4733)

    def test_cluster(self):
        assert parse_endpoint("cluster://example:80") == ("cluster", "example", 80)

    def test_stdio(self):
        assert parse_endpoint("stdio:") == ("stdio", None, None)
        assert parse_endpoint("stdio://") == ("stdio", None, None)

    @pytest.mark.parametrize(
        "bad",
        [
            "http://x:1",
            "tcp://missingport",
            "tcp://:99",
            "cluster://host:notaport",
            "127.0.0.1:4733",
            "",
        ],
    )
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


class TestTcpEndpoint:
    def test_analyze_roundtrip(self, running):
        endpoint = (
            f"tcp://{running.server.bound_host}:{running.server.bound_port}"
        )
        with Client(endpoint) as client:
            report = client.analyze(source=SOURCE, pair=0)
        assert report["dependent"] is True

    def test_call_many_preserves_order_and_isolates_errors(self, running):
        with running.client() as client:
            results = client.call_many(
                [
                    ("analyze", {"source": SOURCE, "pair": 0}),
                    ("analyze", {"source": SOURCE, "pair": 99}),
                    ("health", {}),
                ]
            )
        assert results[0]["dependent"] is True
        assert isinstance(results[1], ServeError)
        assert results[2]["status"] == "ok"

    def test_cluster_scheme_rejects_a_bare_worker(self, running):
        """cluster:// must point at a router; a worker's health frame
        advertises ``cluster: false`` and the client refuses it."""
        endpoint = (
            f"cluster://{running.server.bound_host}:{running.server.bound_port}"
        )
        with pytest.raises(ValueError, match="not a cluster router"):
            Client(endpoint)


@pytest.fixture
def running():
    handle = _RunningServer()
    yield handle
    handle.stop()


class TestStdioEndpoint:
    def test_full_call_surface_over_pipes(self):
        with Client("stdio:") as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["cluster"] is False
            report = client.analyze(source=SOURCE, pair=0)
            assert report["dependent"] is True
            many = client.call_many(
                [("analyze", {"source": SOURCE, "pair": 0})] * 3
            )
            assert all(r == report for r in many)


class TestBackCompat:
    def test_serve_client_is_a_tcp_client(self, running):
        client = ServeClient.connect(
            running.server.bound_host,
            running.server.bound_port,
            retry_for=5.0,
        )
        with client:
            assert isinstance(client, Client)
            assert client.scheme == "tcp"
            assert client.analyze(source=SOURCE, pair=0)["dependent"] is True

    def test_api_connect_warns_and_still_works(self, running):
        import repro.api

        with pytest.warns(DeprecationWarning, match="Client\\('tcp://"):
            client = repro.api.connect(
                running.server.bound_host, running.server.bound_port
            )
        with client:
            assert client.analyze(source=SOURCE, pair=0)["dependent"] is True

    def test_api_exports_the_unified_client(self):
        from repro.api import Client as ApiClient

        assert ApiClient is Client
