"""Tests for the unified client (repro.serve.client.Client).

One ``Client`` class, three endpoint schemes — ``tcp://`` (a bare
worker), ``cluster://`` (a router, verified via the protocol-v2
capability frame) and ``stdio:`` (a private child daemon) — with
identical call/call_many/analyze semantics.  ``ServeClient`` and
``repro.api.connect()`` remain as the backward-compatible spellings
(the latter deprecated).

The resilience half exercises the client against a *scripted* TCP
frontend — a hand-rolled socket server whose per-connection behavior
the test controls — so torn frames, mid-call hangups, and recovery
across reconnects are deterministic rather than raced.
"""

import json
import socket
import threading

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.serve import protocol
from repro.serve.client import (
    CircuitBreaker,
    CircuitOpenError,
    Client,
    PURE_OPS,
    RetryPolicy,
    ServeClient,
    ServeError,
    TransportError,
    parse_endpoint,
)

from tests.test_serve_server import SOURCE, _RunningServer


class TestParseEndpoint:
    def test_tcp(self):
        assert parse_endpoint("tcp://127.0.0.1:4733") == ("tcp", "127.0.0.1", 4733)

    def test_cluster(self):
        assert parse_endpoint("cluster://example:80") == ("cluster", "example", 80)

    def test_stdio(self):
        assert parse_endpoint("stdio:") == ("stdio", None, None)
        assert parse_endpoint("stdio://") == ("stdio", None, None)

    @pytest.mark.parametrize(
        "bad",
        [
            "http://x:1",
            "tcp://missingport",
            "tcp://:99",
            "cluster://host:notaport",
            "127.0.0.1:4733",
            "",
        ],
    )
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)


class TestTcpEndpoint:
    def test_analyze_roundtrip(self, running):
        endpoint = (
            f"tcp://{running.server.bound_host}:{running.server.bound_port}"
        )
        with Client(endpoint) as client:
            report = client.analyze(source=SOURCE, pair=0)
        assert report["dependent"] is True

    def test_call_many_preserves_order_and_isolates_errors(self, running):
        with running.client() as client:
            results = client.call_many(
                [
                    ("analyze", {"source": SOURCE, "pair": 0}),
                    ("analyze", {"source": SOURCE, "pair": 99}),
                    ("health", {}),
                ]
            )
        assert results[0]["dependent"] is True
        assert isinstance(results[1], ServeError)
        assert results[2]["status"] == "ok"

    def test_cluster_scheme_rejects_a_bare_worker(self, running):
        """cluster:// must point at a router; a worker's health frame
        advertises ``cluster: false`` and the client refuses it."""
        endpoint = (
            f"cluster://{running.server.bound_host}:{running.server.bound_port}"
        )
        with pytest.raises(ValueError, match="not a cluster router"):
            Client(endpoint)


@pytest.fixture
def running():
    handle = _RunningServer()
    yield handle
    handle.stop()


class TestStdioEndpoint:
    def test_full_call_surface_over_pipes(self):
        with Client("stdio:") as client:
            health = client.health()
            assert health["status"] == "ok"
            assert health["cluster"] is False
            report = client.analyze(source=SOURCE, pair=0)
            assert report["dependent"] is True
            many = client.call_many(
                [("analyze", {"source": SOURCE, "pair": 0})] * 3
            )
            assert all(r == report for r in many)


class _ScriptedFrontend:
    """A TCP frontend whose per-connection behavior is a test script.

    ``handler(frontend, conn_index, sock)`` runs once per accepted
    connection; helpers below read protocol frames and write canned
    responses.  Every decoded request lands in ``self.requests`` so
    tests can assert exactly what the client (re)sent.
    """

    def __init__(self, handler):
        self.handler = handler
        self.connections = 0
        self.requests: list[dict] = []
        self._sock = socket.socket()
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.host, self.port = self._sock.getsockname()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    @property
    def endpoint(self) -> str:
        return f"tcp://{self.host}:{self.port}"

    def _serve(self) -> None:
        while True:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return  # listener closed: test over
            index = self.connections
            self.connections += 1
            try:
                self.handler(self, index, conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def read_request(self, rfile) -> dict | None:
        line = rfile.readline()
        if not line:
            return None
        request = json.loads(line)
        self.requests.append(request)
        return request

    @staticmethod
    def answer_health(conn, request) -> None:
        conn.sendall(
            protocol.encode_response(
                protocol.ok_response(
                    request["id"], {"status": "ok", "protocol": 3}
                )
            )
        )

    def close(self) -> None:
        self._sock.close()
        self._thread.join(5)


@pytest.fixture
def scripted():
    frontends = []

    def make(handler):
        frontend = _ScriptedFrontend(handler)
        frontends.append(frontend)
        return frontend

    yield make
    for frontend in frontends:
        frontend.close()


FAST_RETRY = RetryPolicy(attempts=3, base_delay_s=0.01, deadline_s=10.0)


class TestRetryPolicy:
    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(seed=7)
        again = RetryPolicy(seed=7)
        for attempt in range(16):
            factor = policy.jitter(attempt)
            assert factor == again.jitter(attempt)
            assert 0.5 <= factor < 1.0
        assert RetryPolicy(seed=8).jitter(0) != policy.jitter(0)

    def test_delay_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, seed=0
        )
        raw = [policy.delay(k) / policy.jitter(k) for k in range(5)]
        assert raw == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=60.0)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow("tcp://x:1")
        assert excinfo.value.endpoint == "tcp://x:1"
        assert excinfo.value.retry_after_s > 0

    def test_half_open_probe_closes_on_success(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.01)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        import time

        time.sleep(0.02)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        breaker.allow("tcp://x:1")  # the probe rides through
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=0.01)
        breaker.record_failure()
        import time

        time.sleep(0.02)
        breaker.allow("tcp://x:1")
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened == 2

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.failures == 0
        assert breaker.state == CircuitBreaker.CLOSED


class TestTransportFaults:
    def test_torn_frame_is_a_typed_error_with_the_evidence(self, scripted):
        def tear(frontend, index, conn):
            rfile = conn.makefile("rb")
            request = frontend.read_request(rfile)
            if request is not None:
                conn.sendall(b'{"id": %d, "ok"' % request["id"])  # no newline

        frontend = scripted(tear)
        with Client(frontend.endpoint, timeout=5.0) as client:
            with pytest.raises(TransportError) as excinfo:
                client.health()
        err = excinfo.value
        assert "torn frame" in err.detail
        assert err.op == "health"
        assert err.partial is not None and not err.partial.endswith(b"\n")

    def test_undecodable_frame_is_typed_not_a_json_error(self, scripted):
        def garble(frontend, index, conn):
            rfile = conn.makefile("rb")
            if frontend.read_request(rfile) is not None:
                conn.sendall(b"this is not json\n")

        frontend = scripted(garble)
        with Client(frontend.endpoint, timeout=5.0) as client:
            with pytest.raises(TransportError, match="undecodable"):
                client.health()

    def test_eof_mid_call_is_typed(self, scripted):
        def hangup(frontend, index, conn):
            rfile = conn.makefile("rb")
            frontend.read_request(rfile)

        frontend = scripted(hangup)
        with Client(frontend.endpoint, timeout=5.0) as client:
            with pytest.raises(TransportError, match="closed"):
                client.health()


class TestRetryAndReconnect:
    def test_pure_op_recovers_across_a_reconnect(self, scripted):
        def flaky(frontend, index, conn):
            rfile = conn.makefile("rb")
            if index == 0:
                frontend.read_request(rfile)  # swallow, hang up
                return
            while True:
                request = frontend.read_request(rfile)
                if request is None:
                    return
                frontend.answer_health(conn, request)

        frontend = scripted(flaky)
        registry = MetricsRegistry()
        with Client(
            frontend.endpoint, timeout=5.0, retry=FAST_RETRY, registry=registry
        ) as client:
            assert client.health()["status"] == "ok"
        assert frontend.connections == 2
        assert registry.get("client.reconnects") == 1
        assert registry.get("client.retries") == 1
        assert registry.get("client.transport_errors") == 1

    def test_shutdown_is_never_silently_retried(self, scripted):
        def hangup(frontend, index, conn):
            rfile = conn.makefile("rb")
            while frontend.read_request(rfile) is not None:
                pass  # never answer

        frontend = scripted(hangup)
        with Client(frontend.endpoint, timeout=5.0, retry=FAST_RETRY) as client:
            with pytest.raises(TransportError):
                client.shutdown()
        assert [r["op"] for r in frontend.requests] == ["shutdown"]
        assert "shutdown" not in PURE_OPS

    def test_retries_exhaust_into_the_last_transport_error(self, scripted):
        def always_hangup(frontend, index, conn):
            rfile = conn.makefile("rb")
            frontend.read_request(rfile)

        frontend = scripted(always_hangup)
        with Client(frontend.endpoint, timeout=5.0, retry=FAST_RETRY) as client:
            with pytest.raises(TransportError):
                client.health()
        # attempts=3: the op was actually sent three times.
        assert [r["op"] for r in frontend.requests] == ["health"] * 3

    def test_call_many_replays_only_the_unanswered_calls(self, scripted):
        def answer_one_then_die(frontend, index, conn):
            rfile = conn.makefile("rb")
            if index == 0:
                for position in range(3):
                    request = frontend.read_request(rfile)
                    if request is not None and position == 0:
                        frontend.answer_health(conn, request)
                return  # hang up with two calls unanswered
            while True:
                request = frontend.read_request(rfile)
                if request is None:
                    return
                frontend.answer_health(conn, request)

        frontend = scripted(answer_one_then_die)
        with Client(frontend.endpoint, timeout=5.0, retry=FAST_RETRY) as client:
            results = client.call_many([("health", {})] * 3)
        assert [r["status"] for r in results] == ["ok"] * 3
        # First connection saw all three; the replay re-sent only two.
        assert len(frontend.requests) == 5

    def test_breaker_fails_fast_without_touching_the_network(self, scripted):
        def hangup(frontend, index, conn):
            rfile = conn.makefile("rb")
            frontend.read_request(rfile)

        frontend = scripted(hangup)
        registry = MetricsRegistry()
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        with Client(
            frontend.endpoint,
            timeout=5.0,
            breaker=breaker,
            registry=registry,
        ) as client:
            with pytest.raises(TransportError):
                client.health()
            connections_before = frontend.connections
            with pytest.raises(CircuitOpenError):
                client.health()
        assert frontend.connections == connections_before
        assert registry.get("client.breaker_rejections") == 1


class TestBackCompat:
    def test_serve_client_is_a_tcp_client(self, running):
        client = ServeClient.connect(
            running.server.bound_host,
            running.server.bound_port,
            retry_for=5.0,
        )
        with client:
            assert isinstance(client, Client)
            assert client.scheme == "tcp"
            assert client.analyze(source=SOURCE, pair=0)["dependent"] is True

    def test_api_connect_warns_and_still_works(self, running):
        import repro.api

        with pytest.warns(DeprecationWarning, match="Client\\('tcp://"):
            client = repro.api.connect(
                running.server.bound_host, running.server.bound_port
            )
        with client:
            assert client.analyze(source=SOURCE, pair=0)["dependent"] is True

    def test_api_exports_the_unified_client(self):
        from repro.api import Client as ApiClient

        assert ApiClient is Client
