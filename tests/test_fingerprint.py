"""Tests for canonical IR fingerprints (repro.ir.fingerprint).

The incremental engine's correctness rests on two properties pinned
here: fingerprints are *stable* (a pure function of IR meaning —
unparse/re-parse round trips, whitespace and labels never move them)
and *discriminating* (any analysis-relevant edit moves them).
"""

import random

import pytest

from repro.fuzz.edits import mutate, storm_program
from repro.ir.affine import const, var
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.fingerprint import (
    diff_fingerprints,
    nest_fingerprint,
    pair_key,
    program_fingerprint,
    statement_fingerprint,
)
from repro.ir.loops import Loop, LoopNest
from repro.ir.program import Program, Statement, reference_pairs
from repro.lang.unparse import program_to_source
from repro.opt import compile_source


def _nest(upper: int = 10) -> LoopNest:
    return LoopNest([Loop("i", const(1), const(upper))])


def _stmt(offset: int = 0, label: str | None = None) -> Statement:
    return Statement(
        nest=_nest(),
        write=ArrayRef("a", (var("i"),), AccessKind.WRITE),
        reads=(ArrayRef("a", (var("i") + offset,), AccessKind.READ),),
        label=label,
    )


class TestStability:
    @pytest.mark.parametrize("seed", range(10))
    def test_unparse_roundtrip_preserves_every_fingerprint(self, seed):
        program = storm_program(seed, statements=10, arrays=5)
        source = program_to_source(program)
        reparsed = compile_source(source, strict=False).program
        assert program_fingerprint(reparsed) == program_fingerprint(program)

    def test_whitespace_and_comments_are_invisible(self):
        dense = "for i = 1 to 10 do\na[i] = a[i - 1]\nend\n"
        airy = (
            "\n\nfor i = 1 to 10 do\n"
            "    a[ i ] =   a[ i - 1 ]\n"
            "end\n\n"
        )
        fp1 = program_fingerprint(compile_source(dense, strict=False).program)
        fp2 = program_fingerprint(compile_source(airy, strict=False).program)
        assert fp1 == fp2

    def test_labels_are_excluded(self):
        assert statement_fingerprint(_stmt(label="S1")) == (
            statement_fingerprint(_stmt(label=None))
        )

    def test_program_name_is_excluded(self):
        s = _stmt()
        assert program_fingerprint(Program("x", [s])) == (
            program_fingerprint(Program("y", [s]))
        )


class TestDiscrimination:
    def test_bound_edit_moves_nest_and_statement(self):
        assert nest_fingerprint(_nest(10)) != nest_fingerprint(_nest(11))
        wide = Statement(
            nest=_nest(11), write=_stmt().write, reads=_stmt().reads
        )
        assert statement_fingerprint(wide) != statement_fingerprint(_stmt())

    def test_subscript_edit_moves_statement(self):
        assert statement_fingerprint(_stmt(0)) != statement_fingerprint(
            _stmt(1)
        )

    def test_access_kind_matters(self):
        as_read = Statement(
            nest=_nest(),
            write=None,
            reads=(ArrayRef("a", (var("i"),), AccessKind.READ),),
        )
        as_write = Statement(
            nest=_nest(),
            write=ArrayRef("a", (var("i"),), AccessKind.WRITE),
            reads=(),
        )
        assert statement_fingerprint(as_read) != statement_fingerprint(
            as_write
        )


class TestPairKey:
    def test_identical_questions_share_a_key(self):
        program = Program("p", [_stmt(1), _stmt(1)])
        pairs = reference_pairs(program)
        keys = {pair_key(s1, s2) for s1, s2 in pairs}
        # a[i]/a[i] write-write, a[i]/a[i+1] write-read twice (shared),
        # a[i+1]/a[i+1] read-read, a[i+1]/a[i] read-write twice (shared)
        assert len(keys) < len(pairs)

    def test_order_matters(self):
        program = Program("p", [_stmt(1)])
        ((s1, s2),) = [
            p for p in reference_pairs(program) if p[0].ref is not p[1].ref
        ][:1]
        assert pair_key(s1, s2) != pair_key(s2, s1)

    def test_key_survives_index_shift(self):
        head = _stmt(2)
        tail = _stmt(3)
        before = Program("p", [head, tail])
        after = Program("p", [head, _stmt(5), tail])
        keys_before = {
            pair_key(a, b)
            for a, b in reference_pairs(before)
        }
        keys_after = {
            pair_key(a, b)
            for a, b in reference_pairs(after)
        }
        # every question the 2-statement program posed is still posed
        # verbatim after the insertion shifted statement indices
        assert keys_before <= keys_after


class TestDiff:
    def test_self_diff_is_all_kept(self):
        program = storm_program(1, statements=8)
        fp = program_fingerprint(program)
        delta = diff_fingerprints(fp, fp)
        assert delta.unchanged
        assert delta.kept == tuple((i, i) for i in range(8))

    def test_duplicates_pair_positionally(self):
        s = _stmt()
        fp = program_fingerprint(Program("p", [s, s, s]))
        delta = diff_fingerprints(fp, fp)
        assert delta.kept == ((0, 0), (1, 1), (2, 2))

    def test_insert_is_one_dirty_no_removed(self):
        before = Program("p", [_stmt(1), _stmt(2)])
        after = Program("p", [_stmt(1), _stmt(7), _stmt(2)])
        delta = diff_fingerprints(
            program_fingerprint(before), program_fingerprint(after)
        )
        assert delta.dirty == (1,)
        assert delta.removed == ()
        assert delta.kept == ((0, 0), (1, 2))

    def test_delete_is_one_removed_no_dirty(self):
        before = Program("p", [_stmt(1), _stmt(7), _stmt(2)])
        after = Program("p", [_stmt(1), _stmt(2)])
        delta = diff_fingerprints(
            program_fingerprint(before), program_fingerprint(after)
        )
        assert delta.dirty == ()
        assert delta.removed == (1,)
        assert delta.kept == ((0, 0), (2, 1))

    def test_edit_is_one_dirty_one_removed(self):
        before = Program("p", [_stmt(1), _stmt(2)])
        after = Program("p", [_stmt(1), _stmt(3)])
        delta = diff_fingerprints(
            program_fingerprint(before), program_fingerprint(after)
        )
        assert delta.dirty == (1,)
        assert delta.removed == (1,)

    @pytest.mark.parametrize("seed", range(5))
    def test_storm_edits_dirty_at_most_one_statement(self, seed):
        rng = random.Random(seed)
        program = storm_program(seed, statements=10)
        for _ in range(20):
            edited, _ = mutate(program, rng)
            delta = diff_fingerprints(
                program_fingerprint(program), program_fingerprint(edited)
            )
            # one editor action touches at most one statement (an edit
            # may collide with an existing twin and count as kept)
            assert len(delta.dirty) <= 1
            assert len(delta.removed) <= 1
            program = edited
