"""Tests for loop nests and iteration spaces."""

import pytest

from repro.ir.affine import var
from repro.ir.loops import Loop, LoopNest


class TestLoop:
    def test_self_reference_rejected(self):
        with pytest.raises(ValueError):
            Loop("i", var("i"), var("n"))

    def test_rename(self):
        loop = Loop("i", var("n") * 0 + 1, var("n"))
        renamed = loop.rename({"i": "i'", "n": "m"})
        assert renamed.var == "i'"
        assert renamed.upper == var("m")

    def test_str(self):
        loop = Loop("i", var("n") * 0 + 1, var("n"))
        assert str(loop) == "for i = 1 to n"


class TestLoopNest:
    def test_duplicate_variable_rejected(self):
        with pytest.raises(ValueError):
            LoopNest([
                Loop("i", var("z") * 0 + 1, var("z") * 0 + 9),
                Loop("i", var("z") * 0 + 1, var("z") * 0 + 9),
            ])

    def test_inner_reference_rejected(self):
        with pytest.raises(ValueError):
            LoopNest([
                Loop("i", var("j"), var("j") + 5),  # j is the inner loop
                Loop("j", var("j") * 0 + 1, var("j") * 0 + 9),
            ])

    def test_outer_reference_allowed(self):
        nest = LoopNest([
            Loop("i", var("i") * 0 + 1, var("i") * 0 + 9),
            Loop("j", var("i") * 0 + 1, var("i")),
        ])
        assert nest.depth == 2

    def test_symbols(self):
        nest = LoopNest([
            Loop("i", var("lo"), var("n")),
            Loop("j", var("j") * 0 + 1, var("i")),
        ])
        assert nest.symbols() == {"lo", "n"}

    def test_common_prefix(self):
        i_loop = Loop("i", var("i") * 0 + 1, var("i") * 0 + 9)
        j_loop = Loop("j", var("j") * 0 + 1, var("j") * 0 + 9)
        k_loop = Loop("k", var("k") * 0 + 1, var("k") * 0 + 9)
        a = LoopNest([i_loop, j_loop])
        b = LoopNest([i_loop, k_loop])
        assert a.common_prefix_depth(b) == 1
        assert a.common_prefix_depth(a) == 2
        assert a.common_prefix_depth(LoopNest([])) == 0

    def test_iteration_space(self):
        nest = LoopNest([
            Loop("i", var("i") * 0 + 1, var("i") * 0 + 3),
            Loop("j", var("j") * 0 + 1, var("i")),
        ])
        points = list(nest.iteration_space())
        # triangular: 1 + 2 + 3 iterations
        assert len(points) == 6
        assert {"i": 3, "j": 2} in points

    def test_iteration_space_with_symbols(self):
        nest = LoopNest([Loop("i", var("i") * 0 + 1, var("n"))])
        points = list(nest.iteration_space({"n": 4}))
        assert [p["i"] for p in points] == [1, 2, 3, 4]

    def test_empty_loop_no_iterations(self):
        nest = LoopNest([Loop("i", var("i") * 0 + 5, var("i") * 0 + 4)])
        assert list(nest.iteration_space()) == []

    def test_indexing_and_equality(self):
        loop = Loop("i", var("z") * 0 + 1, var("z") * 0 + 9)
        nest = LoopNest([loop])
        assert nest[0] == loop
        assert nest == LoopNest([loop])
        assert hash(nest) == hash(LoopNest([loop]))
