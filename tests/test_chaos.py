"""Deterministic chaos tests (repro.robust.chaos).

The acceptance bar for the whole robustness layer: under a seeded
fault plan injecting worker crashes, hangs, torn writes and corrupt
cache bytes, a batch run must finish (zero hangs), every verdict must
be correct or conservatively degraded (zero correctness violations),
and every injected fault must be accounted for — the fault schedule is
a pure function of ``(seed, site, key)``, so tests *compute* the
faults a run will experience and check the books afterwards.
"""

import time
import warnings

import pytest

from repro.core import persist
from repro.core.analyzer import DependenceAnalyzer
from repro.core.engine import PairQuery, analyze_batch
from repro.core.memo import Memoizer
from repro.ir import builder as B
from repro.robust.chaos import (
    CRASH,
    CRASH_EXIT_CODE,
    HANG,
    FaultPlan,
    active_plan,
    chaos_roll,
    corrupt_bytes,
    injected_counts,
    injection_log,
    reset_log,
)
from repro.robust.watchdog import KIND_CRASH, run_supervised


@pytest.fixture(autouse=True)
def _chaos_off():
    """Never leak a fault plan (it rides an env var into every child)."""
    FaultPlan.uninstall()
    reset_log()
    yield
    FaultPlan.uninstall()
    reset_log()


def _queries(n=8):
    nest = B.nest(("i", 1, 20))
    return [
        PairQuery(
            ref1=B.ref("a", [B.v("i") + k], write=True),
            nest1=nest,
            ref2=B.ref("a", [B.v("i")]),
            nest2=nest,
        )
        for k in range(n)
    ]


def _double_worker(payload):
    return [item * 2 for item in payload]


def _split(payload):
    return [(index, f"item-{item}", [item]) for index, item in enumerate(payload)]


def _fallback(payload):
    return ["fallback", payload]


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42, crash_rate=0.25, hang_rate=0.1, write_fail_rate=0.5
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)

    def test_uniform_is_deterministic_and_in_range(self):
        plan = FaultPlan(seed=7)
        draws = [plan.uniform("site", f"key-{i}") for i in range(100)]
        assert draws == [plan.uniform("site", f"key-{i}") for i in range(100)]
        assert all(0.0 <= draw < 1.0 for draw in draws)
        assert len(set(draws)) > 90  # actually spread out

    def test_uniform_depends_on_seed_site_and_key(self):
        base = FaultPlan(seed=1).uniform("s", "k")
        assert FaultPlan(seed=2).uniform("s", "k") != base
        assert FaultPlan(seed=1).uniform("t", "k") != base
        assert FaultPlan(seed=1).uniform("s", "j") != base

    def test_peek_thresholds(self):
        always = FaultPlan(seed=0, crash_rate=1.0)
        never = FaultPlan(seed=0)
        assert always.peek("s", "k", (CRASH, HANG)) == CRASH
        assert never.peek("s", "k", (CRASH, HANG)) is None
        # Cumulative thresholds: zero crash mass, full hang mass.
        hangs = FaultPlan(seed=0, hang_rate=1.0)
        assert hangs.peek("s", "k", (CRASH, HANG)) == HANG

    def test_chaos_roll_matches_peek_and_logs(self):
        plan = FaultPlan(seed=5, crash_rate=0.5)
        plan.install()
        for i in range(20):
            expected = plan.peek("site", f"k{i}", (CRASH, HANG))
            assert chaos_roll("site", f"k{i}", (CRASH, HANG)) == expected
        logged = injection_log()
        expected_hits = [
            ("site", f"k{i}", CRASH)
            for i in range(20)
            if plan.peek("site", f"k{i}", (CRASH, HANG)) == CRASH
        ]
        assert logged == expected_hits
        assert injected_counts()[CRASH] == len(expected_hits)

    def test_no_plan_means_no_faults(self):
        assert active_plan() is None
        assert chaos_roll("site", "key", (CRASH, HANG)) is None
        assert injection_log() == []

    def test_install_uninstall_cycle(self):
        plan = FaultPlan(seed=9, crash_rate=0.3)
        plan.install()
        assert active_plan() == plan
        FaultPlan.uninstall()
        assert active_plan() is None


class TestCorruptBytes:
    def test_deterministic_and_actually_corrupt(self):
        plan = FaultPlan(seed=11, corrupt_rate=1.0)
        plan.install()
        data = b'{"version": 1, "payload": [1, 2, 3, 4, 5, 6, 7, 8]}'
        mangled = corrupt_bytes(data, "s", "k")
        assert mangled == corrupt_bytes(data, "s", "k")
        assert mangled != data
        assert len(mangled) == max(1, len(data) // 2)


class TestWriteFaultSite:
    def test_injected_write_failure_preserves_destination(self, tmp_path):
        target = tmp_path / "cache.json"
        target.write_text("previous complete content")
        FaultPlan(seed=3, write_fail_rate=1.0).install()
        with pytest.raises(OSError, match="chaos"):
            persist.atomic_write_text(target, "new content", chaos_site="t.w")
        # All-or-nothing: the reader still sees the old complete file.
        assert target.read_text() == "previous complete content"
        assert list(tmp_path.iterdir()) == [target]  # no temp litter

    def test_unnamed_writes_are_never_faulted(self, tmp_path):
        FaultPlan(seed=3, write_fail_rate=1.0).install()
        target = tmp_path / "plain.txt"
        persist.atomic_write_text(target, "content")  # no chaos_site
        assert target.read_text() == "content"

    def test_corrupted_cache_loads_safe_as_cold_start(self, tmp_path):
        path = tmp_path / "memo.json"
        memoizer = Memoizer()
        DependenceAnalyzer(memoizer=memoizer).analyze(
            *(lambda q: (q.ref1, q.nest1, q.ref2, q.nest2))(_queries(1)[0])
        )
        FaultPlan(seed=13, corrupt_rate=1.0).install()
        persist.save_memoizer(memoizer, path)  # bytes mangled en route
        FaultPlan.uninstall()
        with pytest.warns(RuntimeWarning, match="corrupt warm-start cache"):
            assert persist.load_memoizer_safe(path) is None


class TestWorkerFaultSite:
    def test_injected_crash_is_contained_by_watchdog(self):
        # crash_rate=1.0: every worker process dies at entry with the
        # distinctive chaos exit code; the watchdog quarantines every
        # case and the run still completes with fallback answers.
        FaultPlan(seed=1, crash_rate=1.0).install()
        groups, quarantine = run_supervised(
            [[1, 2]],
            _double_worker,
            attempts=2,
            split=_split,
            fallback=_fallback,
        )
        assert groups == [[["fallback", [1]], ["fallback", [2]]]]
        assert [case.reason for case in quarantine] == [KIND_CRASH, KIND_CRASH]
        assert CRASH_EXIT_CODE == 113  # documented, distinctive

    def test_injected_hang_without_watchdog_still_terminates(self):
        # hang then *continue*: a hang site never deadlocks a run that
        # has no timeout configured — it just makes it slow.
        FaultPlan(seed=1, hang_rate=1.0, hang_s=0.2).install()
        start = time.monotonic()
        groups, quarantine = run_supervised([[5]], _double_worker, attempts=1)
        elapsed = time.monotonic() - start
        assert groups == [[[10]]]
        assert quarantine == []
        assert elapsed >= 0.2

    def test_injected_hang_is_killed_by_shard_timeout(self):
        FaultPlan(seed=1, hang_rate=1.0, hang_s=30.0).install()
        start = time.monotonic()
        groups, quarantine = run_supervised(
            [[5]],
            _double_worker,
            timeout=0.3,
            attempts=1,
            split=_split,
            fallback=_fallback,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 10
        assert groups == [[["fallback", [5]]]]
        assert quarantine[0].reason == "timeout"


# The end-to-end schedule below is pinned: seed 18 at crash_rate 0.4
# kills shard 1's worker on both attempts, crashes exactly one of its
# isolated cases (rep 1 -> quarantined to the strict-budget fallback),
# and leaves shard 0 untouched.  The simulation in the test re-derives
# all of that from FaultPlan.peek, so a drift in either the roll or
# the watchdog's key layout fails loudly.
_E2E_PLAN = FaultPlan(seed=18, crash_rate=0.4)
_E2E_JOBS = 2
_E2E_RETRIES = 1


def _expected_schedule(plan, n_queries):
    """Replicate the watchdog's chaos-key sequence without running it."""
    shards = {}
    for rep_index in range(n_queries):
        shards.setdefault(rep_index % _E2E_JOBS, []).append(rep_index)
    attempts = 1 + _E2E_RETRIES
    crashes = retries = 0
    quarantined_reps = []
    for payload_index, reps in sorted(shards.items()):
        attempt_faults = 0
        for attempt in range(attempts):
            kind = plan.peek(
                "engine.shard", f"shard:{payload_index}:{attempt}", (CRASH, HANG)
            )
            if kind != CRASH:
                break
            crashes += 1
            attempt_faults += 1
            if attempt + 1 < attempts:
                retries += 1
        if attempt_faults == attempts:
            for rep_index in reps:
                kind = plan.peek(
                    "engine.shard",
                    f"case:{payload_index}:{rep_index}",
                    (CRASH, HANG),
                )
                if kind == CRASH:
                    crashes += 1
                    quarantined_reps.append(rep_index)
    return crashes, retries, quarantined_reps


class TestChaosBatchEndToEnd:
    def test_seeded_crash_storm_is_survived_and_accounted(self):
        queries = _queries()
        clean = analyze_batch(queries, jobs=_E2E_JOBS)

        crashes, retries, quarantined_reps = _expected_schedule(
            _E2E_PLAN, len(queries)
        )
        # The pinned schedule must not be vacuous: real faults fire.
        assert crashes > 0 and quarantined_reps == [1]

        _E2E_PLAN.install()
        report = analyze_batch(
            queries,
            jobs=_E2E_JOBS,
            shard_timeout=30.0,
            shard_retries=_E2E_RETRIES,
        )
        FaultPlan.uninstall()

        # Zero correctness violations: every verdict matches the clean
        # run or is the flagged conservative over-approximation.
        assert len(report.outcomes) == len(clean.outcomes)
        for chaotic, reference in zip(report.outcomes, clean.outcomes):
            if chaotic.result.degraded:
                assert chaotic.result.dependent is True
            else:
                assert chaotic.result == reference.result

        # Every injected fault is accounted for in the metrics.
        registry = report.stats.registry
        assert registry.get("robust.shard_crashes") == crashes
        assert registry.get("robust.shard_retries") == retries
        assert registry.get("robust.quarantined") == len(quarantined_reps)
        assert [case.rep_index for case in report.quarantine] == quarantined_reps
        assert all(case.reason == KIND_CRASH for case in report.quarantine)
        assert report.summary()["quarantined"] == len(quarantined_reps)

    def test_chaos_run_is_reproducible(self):
        queries = _queries(4)
        _E2E_PLAN.install()
        first = analyze_batch(
            queries, jobs=2, shard_timeout=30.0, shard_retries=1
        )
        second = analyze_batch(
            queries, jobs=2, shard_timeout=30.0, shard_retries=1
        )
        FaultPlan.uninstall()
        assert [o.result for o in first.outcomes] == [
            o.result for o in second.outcomes
        ]
        assert first.quarantine == second.quarantine
        assert (
            first.stats.registry.counter_snapshot()
            == second.stats.registry.counter_snapshot()
        )

    def test_checkpoint_survives_total_write_failure(self, tmp_path):
        queries = _queries(4)
        clean = analyze_batch(queries, jobs=2)
        path = tmp_path / "ck.json"
        FaultPlan(seed=6, write_fail_rate=1.0).install()
        with pytest.warns(RuntimeWarning, match="checkpoint write"):
            report = analyze_batch(queries, jobs=2, checkpoint=path)
        FaultPlan.uninstall()
        # The run completes with correct answers; only durability of
        # the checkpoint is lost.
        assert [o.result for o in report.outcomes] == [
            o.result for o in clean.outcomes
        ]
        assert not path.exists()

    def test_clean_plan_changes_nothing(self):
        queries = _queries(4)
        clean = analyze_batch(queries, jobs=2)
        FaultPlan(seed=0).install()  # all rates zero
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = analyze_batch(
                queries, jobs=2, shard_timeout=30.0, shard_retries=1
            )
        FaultPlan.uninstall()
        assert [o.result for o in report.outcomes] == [
            o.result for o in clean.outcomes
        ]
        assert report.quarantine == []
        assert report.stats.registry.get("robust.shard_crashes") == 0
