"""Symbolic-term tests (paper section 8)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import DependenceAnalyzer
from repro.core.symbolic import has_symbolic_terms, symbolic_terms
from repro.ir import builder as B
from repro.oracle.enumerate import oracle_dependent


class TestDetection:
    def test_symbol_in_subscript(self):
        nest = B.nest(("i", 1, 10))
        ref = B.ref("a", [B.v("i") + B.v("n")])
        assert has_symbolic_terms(ref, nest)
        assert symbolic_terms(ref, nest) == {"n"}

    def test_symbol_in_bound(self):
        nest = B.nest(("i", 1, B.v("n")))
        ref = B.ref("a", [B.v("i")])
        assert symbolic_terms(ref, nest) == {"n"}

    def test_no_symbols(self):
        nest = B.nest(("i", 1, 10))
        assert not has_symbolic_terms(B.ref("a", [B.v("i")]), nest)


class TestPaperExample:
    def test_section8_read_n(self):
        """read(n); a[i+n] = a[i+2n+1]: i + n = i' + 2n + 1 needs
        i - i' = n + 1; with 1 <= i, i' <= 10 that is satisfiable for
        suitable n (e.g. n = 0 is excluded? no: n unknown, any value),
        so the references must be assumed dependent -- and exactly so,
        since some n admits a collision."""
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i") + B.v("n")], write=True)
        r = B.ref("a", [B.v("i") + B.v("n") * 2 + 1])
        result = DependenceAnalyzer().analyze(w, nest, r, nest)
        assert result.dependent
        assert result.exact
        # Cross-check with a concrete witness from the analyzer.
        if result.witness is not None:
            i, ip, n = result.witness
            assert i + n == ip + 2 * n + 1
            assert 1 <= i <= 10 and 1 <= ip <= 10

    def test_symbolic_shift_too_far_is_not_provable(self):
        """a[i] vs a[i+n]: without knowledge of n, dependence must be
        assumed (n = 0 collides)."""
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") + B.v("n")])
        result = DependenceAnalyzer().analyze(w, nest, r, nest)
        assert result.dependent

    def test_same_symbolic_shift_both_sides(self):
        """a[i+n] vs a[i+n+11] with 1 <= i <= 10: the n cancels and the
        shift of 11 exceeds the iteration range -- exactly independent
        for every value of n."""
        nest = B.nest(("i", 1, 10))
        w = B.ref("a", [B.v("i") + B.v("n")], write=True)
        r = B.ref("a", [B.v("i") + B.v("n") + 11])
        result = DependenceAnalyzer().analyze(w, nest, r, nest)
        assert result.independent

    def test_symbolic_bound(self):
        """a[i+1] vs a[i] with 1 <= i <= n is dependent (for n >= 2...
        conservatively any n making the loop non-trivial); the system is
        satisfiable, e.g. n large."""
        nest = B.nest(("i", 1, B.v("n")))
        w = B.ref("a", [B.v("i") + 1], write=True)
        r = B.ref("a", [B.v("i")])
        result = DependenceAnalyzer().analyze(w, nest, r, nest)
        assert result.dependent

    def test_symbolic_bound_impossible(self):
        """a[i] vs a[i] with 1 <= i <= n, i' in the same loop, subscripts
        2i vs 2i'+1: parity still proves independence symbolically."""
        nest = B.nest(("i", 1, B.v("n")))
        w = B.ref("a", [B.v("i") * 2], write=True)
        r = B.ref("a", [B.v("i") * 2 + 1])
        result = DependenceAnalyzer().analyze(w, nest, r, nest)
        assert result.independent
        assert result.decided_by == "gcd"


class TestSymbolicExactness:
    @given(
        st.integers(-2, 2),
        st.integers(-4, 4),
        st.integers(0, 2),
        st.integers(-4, 4),
        st.integers(-3, 3),
    )
    @settings(max_examples=200, deadline=None)
    def test_symbolic_agrees_with_any_concrete_n(self, a1, c1, k, c2, n_lo):
        """If the symbolic analyzer says independent, every concrete
        value of n in a window must also be independent."""
        nest = B.nest(("i", 1, 6))
        w = B.ref("a", [B.v("i") * a1 + B.v("n") + c1], write=True)
        r = B.ref("a", [B.v("i") + B.v("n") * k + c2])
        result = DependenceAnalyzer().analyze(w, nest, r, nest)
        if result.dependent:
            return
        for n in range(n_lo - 3, n_lo + 4):
            env = {"n": n}
            w_c = B.ref("a", [B.v("i") * a1 + n + c1], write=True)
            r_c = B.ref("a", [B.v("i") + n * k + c2])
            assert not oracle_dependent(w_c, nest, r_c, nest), (
                f"symbolically independent but n={n} collides"
            )
