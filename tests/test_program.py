"""Tests for programs, access sites and reference-pair extraction."""

from repro.ir import builder as B
from repro.ir.arrays import AccessKind, ArrayRef
from repro.ir.program import reference_pairs


class TestArrayRef:
    def test_make_coerces_ints(self):
        ref = ArrayRef.make("a", [3, B.v("i")])
        assert ref.subscripts[0].is_constant

    def test_variables(self):
        ref = B.ref("a", [B.v("i") + B.v("n"), B.v("j")])
        assert ref.variables() == {"i", "j", "n"}

    def test_kinds(self):
        assert B.ref("a", [1], write=True).is_write
        assert not B.ref("a", [1]).is_write
        assert B.ref("a", [1]).kind == AccessKind.READ

    def test_str(self):
        assert str(B.ref("a", [B.v("i"), 3])) == "a[i][3]"


class TestBuilder:
    def test_nest_accepts_mixed_bounds(self):
        nest = B.nest(("i", 1, "n"), ("j", B.v("i"), B.v("i") + 2))
        assert nest.depth == 2
        assert nest.symbols() == {"n"}

    def test_assign_appends(self):
        prog = B.program("p", source_lines=42)
        nest = B.nest(("i", 1, 5))
        stmt = B.assign(prog, nest, ("a", [B.v("i")]), [("b", [B.v("i")])])
        assert prog.statements == [stmt]
        assert stmt.write.is_write
        assert prog.source_lines == 42

    def test_assign_without_write(self):
        prog = B.program("p")
        nest = B.nest(("i", 1, 5))
        stmt = B.assign(prog, nest, None, [("b", [B.v("i")])])
        assert stmt.write is None
        assert len(stmt.refs()) == 1


class TestReferencePairs:
    def _program(self):
        prog = B.program("p")
        nest = B.nest(("i", 1, 5))
        B.assign(
            prog,
            nest,
            ("a", [B.v("i")]),
            [("a", [B.v("i") - 1]), ("b", [B.v("i")])],
        )
        B.assign(prog, nest, ("b", [B.v("i")]), [("a", [B.v("i")])])
        return prog

    def test_pairs_require_common_array(self):
        pairs = reference_pairs(self._program())
        assert all(p[0].ref.array == p[1].ref.array for p in pairs)

    def test_pairs_require_a_write(self):
        pairs = reference_pairs(self._program())
        assert all(p[0].ref.is_write or p[1].ref.is_write for p in pairs)

    def test_read_read_pairs_excluded(self):
        prog = B.program("p")
        nest = B.nest(("i", 1, 5))
        B.assign(
            prog,
            nest,
            ("x", [B.v("i")]),
            [("c", [B.v("i")]), ("c", [B.v("i") + 1])],
        )
        pairs = reference_pairs(prog)
        # c is only read: the c-c pair must not appear
        assert all(p[0].ref.array != "c" for p in pairs)

    def test_expected_pair_count(self):
        # arrays: a appears as write(s1), read(s1), read(s2);
        # b as read(s1), write(s2).
        # a-pairs with a write: (w,r1), (w,r2), -- r1-r2 is read-read: no.
        # b-pairs: (r, w).
        pairs = reference_pairs(self._program())
        assert len(pairs) == 3

    def test_self_output_option(self):
        prog = B.program("p")
        nest = B.nest(("i", 1, 5))
        B.assign(prog, nest, ("a", [B.v("i")]), [])
        assert reference_pairs(prog) == []
        with_self = reference_pairs(prog, include_self_output=True)
        assert len(with_self) == 1

    def test_sites_ordering(self):
        sites = self._program().sites()
        indices = [s.site_index for s in sites]
        assert indices == sorted(indices)
        assert sites[0].ref.is_write
