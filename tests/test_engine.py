"""Tests for the sharded batch analysis engine (core/engine.py).

The load-bearing property is determinism: the engine must produce
bit-identical verdicts, distances and direction vectors to the serial
per-pair driver, for any shard count, on the full synthetic PERFECT
suite.  CI runs this module as the determinism gate.
"""

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.core.engine import (
    PairQuery,
    analyze_batch,
    queries_from_program,
    queries_from_suite,
)
from repro.core.memo import Memoizer
from repro.core.parallel import analyze_parallelism
from repro.core.persist import dumps, loads
from repro.ir import builder as B
from repro.ir.program import Program, Statement
from repro.perfect import load_suite


def _suite_queries(scale=0.25):
    """The full 13-program suite; scale shrinks repetition counts only."""
    return queries_from_suite(load_suite(include_symbolic=True, scale=scale))


def _shift_query(var="i", nest=None):
    nest = nest or B.nest((var, 1, 10))
    return PairQuery(
        ref1=B.ref("a", [B.v(var) + 1], write=True),
        nest1=nest,
        ref2=B.ref("a", [B.v(var)]),
        nest2=nest,
    )


class TestDeterminism:
    def test_sharded_matches_serial_on_full_suite(self):
        """Acceptance gate: sharded == serial on every suite query."""
        queries = _suite_queries()
        serial = DependenceAnalyzer(memoizer=Memoizer(), want_witness=False)
        expected = []
        for q in queries:
            result = serial.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
            directions = serial.directions(
                q.ref1, q.nest1, q.ref2, q.nest2
            )
            expected.append((result, directions))

        report = analyze_batch(queries, jobs=2)
        assert len(report.outcomes) == len(queries)
        for (exp_result, exp_directions), outcome in zip(
            expected, report.outcomes
        ):
            assert outcome.result.dependent == exp_result.dependent
            assert outcome.result.decided_by == exp_result.decided_by
            assert outcome.result.exact == exp_result.exact
            assert outcome.result.distance == exp_result.distance
            assert outcome.directions.vectors == exp_directions.vectors
            assert outcome.directions.n_common == exp_directions.n_common

    def test_shard_count_never_changes_answers(self):
        queries = _suite_queries(scale=0.1)
        reports = [
            analyze_batch(queries, jobs=jobs, want_directions=False)
            for jobs in (1, 2, 3)
        ]
        baseline = reports[0]
        for report in reports[1:]:
            for a, b in zip(baseline.outcomes, report.outcomes):
                assert a.result.dependent == b.result.dependent
                assert a.result.decided_by == b.result.decided_by
                assert a.result.distance == b.result.distance


class TestDeduplication:
    def test_structural_and_canonical_dedup(self):
        nest_i = B.nest(("i", 1, 10))
        nest_j = B.nest(("j", 1, 10))
        q_i = _shift_query("i", nest_i)
        q_j = _shift_query("j", nest_j)  # alpha-renamed twin of q_i
        report = analyze_batch([q_i, q_i, q_j], jobs=1)
        assert report.n_queries == 3
        assert report.n_unique_pairs == 2  # q_i twice collapses
        assert report.n_unique_problems == 1  # q_j merges canonically
        assert [o.deduped for o in report.outcomes] == [False, True, True]
        for outcome in report.outcomes:
            assert outcome.result.dependent
            assert outcome.result.distance == (1,)
            assert outcome.directions.vectors == frozenset({("<",)})

    def test_constant_screen_answers_inline(self):
        nest = B.nest(("i", 1, 10))
        q = PairQuery(
            ref1=B.ref("a", [3], write=True),
            nest1=nest,
            ref2=B.ref("a", [4]),
            nest2=nest,
        )
        report = analyze_batch([q], jobs=1)
        assert report.n_screened == 1
        assert report.n_unique_problems == 0
        assert report.outcomes[0].result.independent
        assert report.outcomes[0].directions.vectors == frozenset()
        assert report.stats.constant_cases == 1
        assert sum(report.stats.decided_by.values()) == 0

    def test_empty_batch(self):
        report = analyze_batch([])
        assert report.outcomes == []
        assert report.n_queries == 0


class TestWarmStart:
    def test_warm_run_serves_everything_from_memo(self):
        queries = _suite_queries(scale=0.1)
        cold = analyze_batch(queries, jobs=2, want_directions=False)
        warm = analyze_batch(
            queries,
            jobs=2,
            want_directions=False,
            warm=loads(dumps(cold.memoizer)),
        )
        # A warm start runs zero dependence tests and hits on every
        # dispatched problem, so its with-bounds hit rate strictly
        # exceeds the cold run's.
        assert sum(warm.stats.decided_by.values()) == 0
        assert warm.stats.memo_hits_bounds > 0
        assert warm.hit_rate_bounds() > cold.hit_rate_bounds()
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.result.dependent == b.result.dependent
            assert a.result.decided_by == b.result.decided_by
            assert a.result.distance == b.result.distance

    def test_warm_accepts_path(self, tmp_path):
        from repro.core.persist import save_memoizer

        queries = [_shift_query()]
        cold = analyze_batch(queries, jobs=1)
        path = tmp_path / "cache.json"
        save_memoizer(cold.memoizer, path)
        warm = analyze_batch(queries, jobs=1, warm=path)
        assert sum(warm.stats.decided_by.values()) == 0

    def test_warm_scheme_mismatch_raises(self):
        with pytest.raises(ValueError):
            analyze_batch([], warm=Memoizer(improved=False))


class TestMergedArtifacts:
    def test_merged_memoizer_covers_every_dispatched_case(self):
        queries = _suite_queries(scale=0.1)
        report = analyze_batch(queries, jobs=3, want_directions=False)
        # Re-running serially against the merged table performs no tests.
        analyzer = DependenceAnalyzer(
            memoizer=loads(dumps(report.memoizer)), want_witness=False
        )
        for q in queries:
            analyzer.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
        assert sum(analyzer.stats.decided_by.values()) == 0

    def test_stats_account_for_every_query(self):
        queries = _suite_queries(scale=0.1)
        report = analyze_batch(queries, jobs=2, want_directions=False)
        # Screened queries + dispatched representatives; dedup means the
        # analyzer sees fewer queries than the batch holds.
        assert report.stats.total_queries == (
            report.n_screened + report.n_unique_problems
        )


class TestParallelismClient:
    def _program(self):
        program = Program("p")
        nest = B.nest(("i", 1, 10), ("j", 1, 10))
        program.add(
            Statement(
                nest=nest,
                write=B.ref("a", [B.v("i"), B.v("j")], write=True),
                reads=(B.ref("a", [B.v("i") - 1, B.v("j")]),),
            )
        )
        program.add(
            Statement(
                nest=nest,
                write=B.ref("b", [B.v("i"), B.v("j")], write=True),
                reads=(B.ref("b", [B.v("i"), B.v("j") - 1]),),
            )
        )
        return program

    def test_engine_path_matches_serial_reports(self):
        program = self._program()
        serial = analyze_parallelism(
            program, DependenceAnalyzer(memoizer=Memoizer())
        )
        engine = analyze_parallelism(program, jobs=2)
        assert [
            (r.loop.var, r.level, r.parallel) for r in serial
        ] == [(r.loop.var, r.level, r.parallel) for r in engine]
        for s, e in zip(serial, engine):
            assert [
                (c1.site_index, c2.site_index) for c1, c2 in s.carriers
            ] == [(c1.site_index, c2.site_index) for c1, c2 in e.carriers]

    def test_jobs_with_explicit_analyzer_raises(self):
        with pytest.raises(ValueError):
            analyze_parallelism(
                self._program(), DependenceAnalyzer(), jobs=2
            )

    def test_queries_from_program_tags_sites(self):
        queries = queries_from_program(self._program())
        assert len(queries) == 2  # one testable pair per array
        for query in queries:
            site1, site2 = query.tag
            assert site1.ref is query.ref1
            assert site2.ref is query.ref2
