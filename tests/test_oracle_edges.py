"""Edge-case tests for the enumeration oracle and its search box.

The oracle is the fuzzer's ground truth, so its own corner behavior —
empty systems, zero-iteration loops, unbounded and symbolic variables,
and the clamped enumeration box — gets pinned down here.
"""

from hypothesis import HealthCheck, given, settings
import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.fuzz.generator import case_strategy
from repro.ir import builder as B
from repro.oracle import (
    DEFAULT_RADIUS,
    enumeration_box,
    iterate_box,
    oracle_dependent,
    oracle_direction_vectors,
    solve_in_box,
)
from repro.system.constraints import ConstraintSystem
from repro.system.depsystem import build_problem


class TestEnumerationBox:
    def test_two_sided_bounds_pass_through(self):
        system = ConstraintSystem(("x",))
        system.add([-1], 2)  # x >= -2
        system.add([1], 5)  # x <= 5
        assert enumeration_box(system) == [(-2, 5)]

    def test_unbounded_variable_clamped_to_radius(self):
        system = ConstraintSystem(("x",))
        assert enumeration_box(system, radius=4) == [(-4, 4)]

    def test_half_bounded_gets_full_window(self):
        system = ConstraintSystem(("x", "y"))
        system.add([-1, 0], 0)  # x >= 0
        system.add([0, 1], 3)  # y <= 3
        assert enumeration_box(system, radius=4) == [(0, 8), (-5, 3)]

    def test_contradictory_interval_is_none(self):
        system = ConstraintSystem(("x",))
        system.add([1], 1)  # x <= 1
        system.add([-1], -3)  # x >= 3
        assert enumeration_box(system) is None

    def test_iterate_box_arity_mismatch(self):
        system = ConstraintSystem(("x", "y"))
        with pytest.raises(ValueError):
            next(iterate_box(system, [(0, 1)]))

    def test_solve_in_box_empty_system(self):
        # Zero variables, zero constraints: the empty point satisfies.
        system = ConstraintSystem(())
        assert solve_in_box(system) == ()

    def test_solve_in_box_finds_distant_solution_inside_bounds(self):
        system = ConstraintSystem(("x",))
        system.add([-1], -50)  # x >= 50
        system.add([1], 50)  # x <= 50
        # Far outside +-radius of zero, but the bounds pin it exactly.
        assert solve_in_box(system, radius=2) == (50,)

    def test_solve_in_box_symbolic_problem(self):
        # a[i] vs a[n]: dependent for some n within the default window.
        nest = B.nest(("i", 0, 4))
        problem = build_problem(
            B.ref("a", [B.v("i")], write=True),
            nest,
            B.ref("a", [B.v("n")]),
            nest,
        )
        system = problem.bounds
        witness = None
        for point in iterate_box(system, enumeration_box(system)):
            if all(
                sum(c * x for c, x in zip(coeffs, point)) == rhs
                for coeffs, rhs in problem.equations
            ):
                witness = point
                break
        assert witness is not None

    def test_default_radius_exported(self):
        assert DEFAULT_RADIUS >= 1


class TestZeroIterationLoops:
    def test_oracle_empty_loop_no_dependence(self):
        nest = B.nest(("i", 5, 2))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") + 1])
        assert not oracle_dependent(w, nest, r, nest)
        assert oracle_direction_vectors(w, nest, r, nest) == set()

    def test_constant_fast_path_assumes_nonempty_loops(self):
        # Documented model precondition (paper section 5): the
        # constant fast path answers a[3] vs a[3] DEPENDENT without
        # looking at the loops at all, so under a zero-iteration loop
        # it diverges from the oracle.  The fuzz generator respects the
        # precondition instead of testing out-of-contract inputs.
        nest = B.nest(("i", 5, 2))
        w = B.ref("a", [B.c(3)], write=True)
        r = B.ref("a", [B.c(3)])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(w, nest, r, nest)
        assert result.dependent
        assert result.decided_by == "constant"
        assert not oracle_dependent(w, nest, r, nest)

    def test_cascade_exact_when_empty_loop_variable_used(self):
        # When the zero-iteration loop's variable appears in a
        # subscript, its contradictory bounds enter the system and the
        # cascade proves independence exactly.
        nest = B.nest(("i", 5, 2))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") + 1])
        result = DependenceAnalyzer().analyze(w, nest, r, nest)
        assert not result.dependent
        assert result.exact


class TestUnboundedVariables:
    def test_symbolic_upper_bound(self):
        nest = B.nest(("i", 0, B.v("n")))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") + 1])
        assert oracle_dependent(w, nest, r, nest, env={"n": 3})
        assert not oracle_dependent(w, nest, r, nest, env={"n": 0})

    def test_direction_vectors_under_environment(self):
        nest = B.nest(("i", 0, B.v("n")))
        w = B.ref("a", [B.v("i")], write=True)
        r = B.ref("a", [B.v("i") + 1])
        vectors = oracle_direction_vectors(w, nest, r, nest, env={"n": 4})
        assert vectors == {(">",)}


class TestGeneratorOracleProperty:
    @given(case=case_strategy(tier="constant", seed=13))
    @settings(max_examples=15, suppress_health_check=[HealthCheck.too_slow])
    def test_exact_verdict_matches_oracle(self, case):
        result = DependenceAnalyzer().analyze(
            case.ref1, case.nest1, case.ref2, case.nest2
        )
        if result.exact:
            assert result.dependent == oracle_dependent(
                case.ref1, case.nest1, case.ref2, case.nest2, case.env
            )
