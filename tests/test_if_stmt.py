"""Tests for conditional statements through the whole pipeline."""

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.ir.program import reference_pairs
from repro.lang import IfStmt, ParseError, parse
from repro.lang.unparse import unparse
from repro.opt import compile_source, propagate_constants, substitute_inductions


class TestParsing:
    def test_basic_if(self):
        program = parse(
            "if i < 10 then\n  a[i] = 0\nend if"
        )
        (stmt,) = program.body
        assert isinstance(stmt, IfStmt)
        assert stmt.op == "<"
        assert len(stmt.then_body) == 1
        assert stmt.else_body == []

    def test_if_else(self):
        program = parse(
            "if n >= 5 then\n  a[1] = 0\nelse\n  a[2] = 0\nend if"
        )
        (stmt,) = program.body
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "==", "!="])
    def test_all_comparison_operators(self, op):
        program = parse(f"if i {op} j then\n  x = 1\nend")
        (stmt,) = program.body
        assert stmt.op == op

    def test_nested_in_loop(self):
        program = parse(
            "for i = 1 to 10 do\n"
            "  if i < 5 then\n"
            "    a[i] = 0\n"
            "  end if\n"
            "end for"
        )
        (loop,) = program.body
        (cond,) = loop.body
        assert isinstance(cond, IfStmt)

    def test_missing_operator(self):
        with pytest.raises(ParseError):
            parse("if i then\n  x = 1\nend")

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse("if i < 1 then\n  x = 1\n")


class TestUnparseIf:
    def test_round_trip(self):
        source = (
            "if i <= n then\n"
            "  a[i] = 0\n"
            "else\n"
            "  a[i + 1] = 0\n"
            "end if\n"
        )
        once = unparse(parse(source))
        assert unparse(parse(once)) == once
        assert "else" in once and "end if" in once


class TestOptimizerWithIf:
    def test_constprop_meet(self):
        # x constant only when both branches agree
        program = propagate_constants(
            parse(
                "if n < 5 then\n  x = 3\nelse\n  x = 3\nend\ny = x"
            )
        )
        assert str(program.body[1].expr) == "3"

    def test_constprop_disagreement_invalidates(self):
        program = propagate_constants(
            parse(
                "if n < 5 then\n  x = 3\nelse\n  x = 4\nend\ny = x"
            )
        )
        assert str(program.body[1].expr) == "x"

    def test_conditional_increment_not_induction(self):
        optimized = substitute_inductions(
            parse(
                "k = 0\n"
                "for i = 1 to 10 do\n"
                "  if i < 5 then\n"
                "    k = k + 1\n"
                "  end if\n"
                "  a[k] = 0\n"
                "end for"
            )
        )
        loop = optimized.body[1]
        store = loop.body[1]
        # k must NOT be replaced by a closed form
        assert "k" in str(store.target)


class TestDependenceWithIf:
    def test_branch_references_analyzed_conservatively(self):
        result = compile_source(
            "for i = 2 to 10 do\n"
            "  if i < 5 then\n"
            "    a[i] = 1\n"
            "  else\n"
            "    b[i] = a[i - 1]\n"
            "  end if\n"
            "end for"
        )
        pairs = reference_pairs(result.program)
        assert len(pairs) == 1
        analyzer = DependenceAnalyzer()
        verdict = analyzer.analyze_sites(*pairs[0])
        # conservatively dependent (the branches never co-execute for
        # the same i, but i=4 writes and i=5 reads across iterations —
        # this one is genuinely dependent)
        assert verdict.dependent

    def test_guarded_parallel_loop(self):
        from repro.core.parallel import analyze_parallelism

        program = compile_source(
            "for i = 1 to 10 do\n"
            "  if i < 5 then\n"
            "    a[i] = 0\n"
            "  else\n"
            "    a[i] = 1\n"
            "  end if\n"
            "end for"
        ).program
        reports = analyze_parallelism(program)
        # both branches write a[i]: output dependence only at '=',
        # loop still parallel
        assert all(r.parallel for r in reports)
