"""Tests for map-reduce merging of analyzer stats and memo tables.

The batch engine's reduce step relies on two algebraic facts: summing
:class:`AnalyzerStats` is associative and order-independent, and
unioning memoizer tables loses nothing — the merged table answers every
case any shard saw, survives a persistence round trip, and warm-starts
with hits on the very first query.
"""

import random

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.core.persist import (
    dumps,
    load_memoizer,
    loads,
    merge_memoizers,
    save_memoizer,
)
from repro.core.stats import AnalyzerStats
from repro.perfect import PROGRAM_SPECS, generate_program

import pytest


def _random_stats(seed: int) -> AnalyzerStats:
    rng = random.Random(seed)
    stats = AnalyzerStats()
    stats.total_queries = rng.randrange(100)
    stats.constant_cases = rng.randrange(50)
    stats.gcd_independent = rng.randrange(50)
    stats.memo_queries_no_bounds = rng.randrange(100)
    stats.memo_hits_no_bounds = rng.randrange(50)
    stats.memo_queries_bounds = rng.randrange(100)
    stats.memo_hits_bounds = rng.randrange(50)
    stats.direction_vectors_found = rng.randrange(20)
    for name in ("svpc", "acyclic", "loop_residue", "fourier_motzkin"):
        stats.decided_by[name] = rng.randrange(10)
        stats.direction_tests[name] = rng.randrange(10)
        stats.outcomes[(name, "independent")] = rng.randrange(10)
    return stats


def _run(queries, memoizer):
    analyzer = DependenceAnalyzer(memoizer=memoizer, want_witness=False)
    for query in queries:
        analyzer.analyze(query.ref1, query.nest1, query.ref2, query.nest2)
    return analyzer


class TestStatsMerge:
    def test_merge_is_associative(self):
        a, b, c = (_random_stats(seed) for seed in (1, 2, 3))
        left = AnalyzerStats.merged(
            [AnalyzerStats.merged([a, b]), c]
        )
        right = AnalyzerStats.merged(
            [a, AnalyzerStats.merged([b, c])]
        )
        assert left == right

    def test_merge_is_order_independent(self):
        runs = [_random_stats(seed) for seed in range(6)]
        forward = AnalyzerStats.merged(runs)
        shuffled = AnalyzerStats.merged(list(reversed(runs)))
        assert forward == shuffled

    def test_merged_equals_pairwise_accumulation(self):
        runs = [_random_stats(seed) for seed in range(4)]
        total = AnalyzerStats()
        for run in runs:
            total.merge(run)
        assert AnalyzerStats.merged(runs) == total

    def test_merged_of_nothing_is_zero(self):
        assert AnalyzerStats.merged([]) == AnalyzerStats()

    def test_sharded_stats_sum_like_one_run(self):
        """Sharding the workload never loses a counter: the shards'
        merged totals count exactly the queries each shard performed."""
        queries = generate_program(PROGRAM_SPECS[1])
        half = len(queries) // 2
        first = _run(queries[:half], Memoizer())
        second = _run(queries[half:], Memoizer())
        merged = AnalyzerStats.merged([first.stats, second.stats])
        assert merged.total_queries == len(queries)
        assert merged.decided_by == first.stats.decided_by + second.stats.decided_by


class TestMemoizerMerge:
    def test_union_of_disjoint_tables(self):
        a, b = Memoizer(), Memoizer()
        a.no_bounds.insert((1, 2), "left")
        b.no_bounds.insert((3, 4), "right")
        merged = merge_memoizers([a, b])
        assert merged.no_bounds.lookup((1, 2)) == (True, "left")
        assert merged.no_bounds.lookup((3, 4)) == (True, "right")
        assert len(merged.no_bounds) == 2

    def test_merge_requires_matching_scheme(self):
        with pytest.raises(ValueError):
            merge_memoizers([Memoizer(), Memoizer(improved=False)])
        with pytest.raises(ValueError):
            Memoizer(symmetry=True).merge_from(Memoizer())

    def test_merge_of_nothing(self):
        merged = merge_memoizers([])
        assert len(merged.no_bounds) == 0

    def test_merged_tables_round_trip_and_warm_start(self):
        """Shard a workload, merge the shards' memoizers, persist the
        union, and confirm the restored table hits on the first query
        of either shard — zero tests on the warm run."""
        queries = generate_program(PROGRAM_SPECS[1])
        half = len(queries) // 2
        first = _run(queries[:half], Memoizer())
        second = _run(queries[half:], Memoizer())

        merged = merge_memoizers(
            [first.memoizer, second.memoizer]
        )
        restored = loads(dumps(merged))
        assert len(restored.no_bounds) == len(merged.no_bounds)
        assert len(restored.with_bounds) == len(merged.with_bounds)

        warmed = DependenceAnalyzer(memoizer=restored, want_witness=False)
        probe = queries[0]
        result = warmed.analyze(
            probe.ref1, probe.nest1, probe.ref2, probe.nest2
        )
        assert result.from_memo or result.decided_by == "constant"
        # And the whole workload replays without a single test.
        replay = _run(queries, restored)
        assert sum(replay.stats.decided_by.values()) == 0

    def test_merged_file_round_trip(self, tmp_path):
        memo = Memoizer()
        _run(generate_program(PROGRAM_SPECS[0]), memo)
        path = tmp_path / "merged.json"
        save_memoizer(merge_memoizers([memo, Memoizer()]), path)
        restored = load_memoizer(path)
        assert len(restored.no_bounds) == len(memo.no_bounds)

    def test_fixed_size_round_trips(self):
        memo = Memoizer.paper()
        _run(generate_program(PROGRAM_SPECS[0]), memo)
        restored = loads(dumps(memo))
        assert restored.no_bounds.fixed_size
        assert restored.no_bounds.size == 4096
