"""Tests for the differential-fuzzing harness.

The expensive acceptance sweeps (10k cases) run in CI's nightly fuzz
job; here we keep the campaigns small but cover every moving part:
clean runs, determinism across worker counts, fault injection with
shrinking, and corpus round-trips.
"""

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.deptests.base import TestResult as CascadeResult
from repro.deptests.base import Verdict
from repro.deptests.svpc import SvpcTest
from repro.fuzz.corpus import fingerprint, load_corpus, save_case
from repro.fuzz.generator import generate_case, generate_cases
from repro.fuzz.harness import (
    FuzzConfig,
    check_case,
    replay_cases,
    run_fuzz,
)


class _BrokenSvpc(SvpcTest):
    """Fault injection: claims independence whenever SVPC proves
    dependence (a 'broken bound check' that flips the verdict)."""

    def _decide(self, system, sink, scope):
        result = super()._decide(system, sink, scope)
        if result.verdict is Verdict.DEPENDENT:
            return CascadeResult(Verdict.INDEPENDENT, self.name)
        return result


def _make_broken(**kwargs):
    analyzer = DependenceAnalyzer(**kwargs)
    broken = _BrokenSvpc()
    analyzer._svpc = broken
    analyzer._cascade = (broken,) + analyzer._cascade[1:]
    return analyzer


class TestCleanRuns:
    def test_small_campaign_is_clean(self):
        report = run_fuzz(FuzzConfig(seed=0, iterations=60))
        assert report.ok
        assert not report.discrepancies
        assert report.cross_shard_ok is True
        assert len(report.outcomes) == 60
        assert report.registry.get("fuzz.cases") == 60

    def test_check_case_single(self):
        outcome = check_case(generate_case(0, 0, "constant"))
        assert not outcome.discrepancies
        assert outcome.decided_by

    def test_render_mentions_discrepancy_count(self):
        report = run_fuzz(FuzzConfig(seed=0, iterations=10, cross_shard=False))
        assert "discrepancies: 0" in report.render()

    def test_time_budget_stops_early(self):
        report = run_fuzz(
            FuzzConfig(seed=0, iterations=100000, time_budget=0.5)
        )
        assert len(report.outcomes) < 100000


class TestDeterminismAcrossJobs:
    def test_stats_equal_serial_vs_sharded(self):
        serial = run_fuzz(FuzzConfig(seed=11, iterations=40, jobs=1))
        sharded = run_fuzz(FuzzConfig(seed=11, iterations=40, jobs=2))
        assert serial.stats_dict() == sharded.stats_dict()
        assert serial.render() == sharded.render()
        assert [o.dependent for o in serial.outcomes] == [
            o.dependent for o in sharded.outcomes
        ]
        assert [o.decided_by for o in serial.outcomes] == [
            o.decided_by for o in sharded.outcomes
        ]

    def test_repeat_run_bitwise_equal(self):
        a = run_fuzz(FuzzConfig(seed=5, iterations=30))
        b = run_fuzz(FuzzConfig(seed=5, iterations=30))
        assert a.stats_dict() == b.stats_dict()
        assert a.render() == b.render()


class TestFaultInjection:
    def test_broken_svpc_is_caught_and_shrunk(self):
        config = FuzzConfig(
            seed=0,
            iterations=60,
            tiers=("constant",),
            shrink=True,
            cross_shard=False,
        )
        report = run_fuzz(config, make_analyzer=_make_broken)
        assert not report.ok
        kinds = {d.kind for d in report.discrepancies}
        assert "verdict-vs-oracle" in kinds or "verdict-vs-box" in kinds
        assert report.shrunk
        # The minimized counterexample must be tiny: at most two loops
        # total, i.e. at most four loop-bound constraints.
        _, smallest = min(
            report.shrunk,
            key=lambda pair: pair[1].nest1.depth + pair[1].nest2.depth,
        )
        assert smallest.nest1.depth + smallest.nest2.depth <= 2
        assert len(smallest.problem().bounds.constraints) <= 4

    def test_broken_analyzer_rejected_with_jobs(self):
        with pytest.raises(ValueError):
            run_fuzz(
                FuzzConfig(seed=0, iterations=4, jobs=2),
                make_analyzer=_make_broken,
            )


class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        case = generate_case(0, 7, "coupled")
        path = save_case(case, tmp_path, note="unit test")
        assert path.exists()
        assert path.name.startswith("coupled-")
        [loaded] = load_corpus(tmp_path)
        assert loaded.to_dict()["ref1"] == case.to_dict()["ref1"]
        assert loaded.env == case.env

    def test_fingerprint_ignores_origin(self):
        case = generate_case(0, 7, "coupled")
        twin = type(case)(
            tier=case.tier,
            seed=99,
            index=1234,
            ref1=case.ref1,
            nest1=case.nest1,
            ref2=case.ref2,
            nest2=case.nest2,
            env=case.env,
        )
        assert fingerprint(case) == fingerprint(twin)

    def test_duplicate_save_is_one_file(self, tmp_path):
        case = generate_case(0, 3, "constant")
        save_case(case, tmp_path)
        save_case(case, tmp_path, note="again")
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(tmp_path / "nope") == []

    def test_replay_corpus_cases(self, tmp_path):
        for index in range(4):
            save_case(generate_case(0, index, "constant"), tmp_path)
        cases = load_corpus(tmp_path)
        report = replay_cases(cases, FuzzConfig(shrink=False))
        assert report.ok
        assert len(report.outcomes) == len(cases)

    def test_failing_campaign_writes_corpus(self, tmp_path):
        config = FuzzConfig(
            seed=0,
            iterations=30,
            tiers=("constant",),
            shrink=True,
            corpus=str(tmp_path),
            cross_shard=False,
        )
        report = run_fuzz(config, make_analyzer=_make_broken)
        assert not report.ok
        written = list(tmp_path.glob("*.json"))
        assert written
        assert all(p.name.startswith("constant-") for p in written)


class TestReplaySharded:
    def test_replay_with_duplicate_indices(self):
        # Corpus cases can share index values; the sharded path must
        # not collapse them.
        from dataclasses import replace

        clones = [replace(c, index=0) for c in generate_cases(0, 6)]
        report = replay_cases(
            clones, FuzzConfig(jobs=2, shrink=False, cross_shard=False, e2e=False)
        )
        assert len(report.outcomes) == 6
