"""Frontend-path validation: workload queries rendered to source text
must produce identical verdicts when compiled through the full pipeline."""

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.ir.program import reference_pairs
from repro.opt import compile_source
from repro.perfect import PATTERNS, SYMBOLIC_PATTERNS, make_query
from repro.perfect.source_gen import queries_to_source, query_to_source


def _verdict_via_builder(query):
    analyzer = DependenceAnalyzer()
    return analyzer.analyze(
        query.ref1, query.nest1, query.ref2, query.nest2
    )


def _verdict_via_frontend(query):
    source = query_to_source(query)
    program = compile_source(source).program
    pairs = reference_pairs(program)
    assert len(pairs) == 1, f"expected one pair, got {len(pairs)}\n{source}"
    analyzer = DependenceAnalyzer()
    return analyzer.analyze_sites(*pairs[0])


class TestQueryToSource:
    @pytest.mark.parametrize("bucket", sorted(PATTERNS))
    def test_plain_buckets_round_trip(self, bucket):
        for idx in range(12):
            for wrapper in (0, 1):
                query = make_query(bucket, idx, wrapper)
                direct = _verdict_via_builder(query)
                via_source = _verdict_via_frontend(query)
                assert direct.dependent == via_source.dependent, (
                    f"{bucket}/{idx}/{wrapper}"
                )
                assert direct.decided_by == via_source.decided_by

    @pytest.mark.parametrize("bucket", sorted(SYMBOLIC_PATTERNS))
    def test_symbolic_buckets_round_trip(self, bucket):
        for idx in range(8):
            query = make_query(bucket, idx, 0, symbolic=True)
            direct = _verdict_via_builder(query)
            via_source = _verdict_via_frontend(query)
            assert direct.dependent == via_source.dependent
            assert direct.decided_by == via_source.decided_by

    def test_source_is_readable(self):
        query = make_query("svpc", 0, 1)
        source = query_to_source(query)
        assert "for " in source and "end for" in source
        assert source.count("for") >= 2  # wrapper + core loop (+ closers)


class TestQueriesToSource:
    def test_many_queries_one_program(self):
        queries = [make_query("svpc", idx, 0) for idx in range(6)]
        source = queries_to_source(queries)
        program = compile_source(source).program
        pairs = reference_pairs(program)
        assert len(pairs) == 6
        analyzer = DependenceAnalyzer()
        direct = [
            _verdict_via_builder(q).dependent for q in queries
        ]
        via = [analyzer.analyze_sites(*p).dependent for p in pairs]
        assert direct == via

    def test_symbols_hoisted_once(self):
        queries = [
            make_query("acyclic", idx, 0, symbolic=True) for idx in range(3)
        ]
        source = queries_to_source(queries)
        assert source.count("read(n)") == 1
        program = compile_source(source).program
        assert len(reference_pairs(program)) == 3
