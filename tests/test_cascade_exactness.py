"""End-to-end exactness: the full cascade against brute-force enumeration.

This is the paper's central claim — the cascade of special-case tests
is *exact* in practice.  Here we make it a property: over thousands of
randomized reference pairs (1-D and 2-D, coupled subscripts, trapezoid
bounds, shifted/scaled indices), the analyzer's dependent/independent
answer must equal exhaustive enumeration of the iteration spaces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import DependenceAnalyzer
from repro.ir import builder as B
from repro.oracle.enumerate import oracle_dependent

coef = st.integers(min_value=-3, max_value=3)
shift = st.integers(min_value=-12, max_value=12)
bound = st.integers(min_value=1, max_value=8)


def _affine_1d(a, c, var="i"):
    return B.v(var) * a + c


class TestSingleLoop:
    @given(coef, shift, coef, shift, bound, bound)
    @settings(max_examples=400, deadline=None)
    def test_1d_same_nest(self, a1, c1, a2, c2, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        nest = B.nest(("i", lo, hi))
        ref1 = B.ref("a", [_affine_1d(a1, c1)], write=True)
        ref2 = B.ref("a", [_affine_1d(a2, c2)])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(ref1, nest, ref2, nest)
        truth = oracle_dependent(ref1, nest, ref2, nest)
        assert result.exact
        assert result.dependent == truth, (
            f"a[{a1}i+{c1}] vs a[{a2}i+{c2}], {lo}..{hi}: "
            f"analyzer={result.dependent} ({result.decided_by}), oracle={truth}"
        )
        if result.witness is not None:
            names = dict(zip(["i", "i'"], result.witness))
            assert a1 * names["i"] + c1 == a2 * names["i'"] + c2

    @given(coef, shift, coef, shift, bound)
    @settings(max_examples=200, deadline=None)
    def test_1d_different_nests(self, a1, c1, a2, c2, n):
        nest1 = B.nest(("i", 1, n))
        nest2 = B.nest(("j", 1, n + 2))
        ref1 = B.ref("a", [_affine_1d(a1, c1, "i")], write=True)
        ref2 = B.ref("a", [_affine_1d(a2, c2, "j")])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(ref1, nest1, ref2, nest2)
        truth = oracle_dependent(ref1, nest1, ref2, nest2)
        assert result.dependent == truth


class TestDoubleLoop:
    @given(coef, coef, shift, coef, coef, shift, bound, bound)
    @settings(max_examples=300, deadline=None)
    def test_2d_coupled_subscripts(self, a, b, c, d, e, f, n1, n2):
        """a[a*i + b*j + c] vs a[d*i + e*j + f] in a rectangular nest."""
        nest = B.nest(("i", 1, n1), ("j", 1, n2))
        ref1 = B.ref("a", [B.v("i") * a + B.v("j") * b + c], write=True)
        ref2 = B.ref("a", [B.v("i") * d + B.v("j") * e + f])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(ref1, nest, ref2, nest)
        truth = oracle_dependent(ref1, nest, ref2, nest)
        assert result.exact
        assert result.dependent == truth

    @given(coef, shift, coef, shift, bound, bound)
    @settings(max_examples=200, deadline=None)
    def test_2d_two_dimensional_arrays(self, a1, c1, a2, c2, n1, n2):
        """a[i+c][j] style references with swapped index usage."""
        nest = B.nest(("i", 1, n1), ("j", 1, n2))
        ref1 = B.ref(
            "a", [B.v("i") * a1 + c1, B.v("j")], write=True
        )
        ref2 = B.ref("a", [B.v("j") * a2 + c2, B.v("i")])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(ref1, nest, ref2, nest)
        truth = oracle_dependent(ref1, nest, ref2, nest)
        assert result.dependent == truth

    @given(coef, shift, bound, st.integers(0, 3))
    @settings(max_examples=200, deadline=None)
    def test_trapezoidal_bounds(self, a1, c1, n, inner_off):
        """Inner bound depends on the outer index (trapezoid loops)."""
        nest = B.nest(("i", 1, n), ("j", 1, B.v("i") + inner_off))
        ref1 = B.ref("a", [B.v("i") + c1, B.v("j")], write=True)
        ref2 = B.ref("a", [B.v("j") * a1, B.v("i")])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(ref1, nest, ref2, nest)
        truth = oracle_dependent(ref1, nest, ref2, nest)
        assert result.dependent == truth


class TestWitnessValidity:
    @given(coef, shift, coef, shift, bound)
    @settings(max_examples=200, deadline=None)
    def test_witnesses_satisfy_everything(self, a1, c1, a2, c2, n):
        nest = B.nest(("i", 1, n), ("j", 1, n))
        ref1 = B.ref("a", [B.v("i") * a1 + B.v("j") + c1], write=True)
        ref2 = B.ref("a", [B.v("j") * a2 + c2])
        analyzer = DependenceAnalyzer()
        result = analyzer.analyze(ref1, nest, ref2, nest)
        if result.witness is None:
            return
        # Witness order: i, j, i', j' (then symbols; none here).
        i, j, ip, jp = result.witness
        assert 1 <= i <= n and 1 <= j <= n and 1 <= ip <= n and 1 <= jp <= n
        assert a1 * i + j + c1 == a2 * jp + c2


class TestUnusedEliminationConsistency:
    @given(coef, shift, coef, shift, bound)
    @settings(max_examples=150, deadline=None)
    def test_same_verdict_with_and_without(self, a1, c1, a2, c2, n):
        nest = B.nest(("k", 1, 3), ("i", 1, n))
        ref1 = B.ref("a", [_affine_1d(a1, c1)], write=True)
        ref2 = B.ref("a", [_affine_1d(a2, c2)])
        with_elim = DependenceAnalyzer(eliminate_unused=True)
        without = DependenceAnalyzer(eliminate_unused=False)
        r1 = with_elim.analyze(ref1, nest, ref2, nest)
        r2 = without.analyze(ref1, nest, ref2, nest)
        assert r1.dependent == r2.dependent
        truth = oracle_dependent(ref1, nest, ref2, nest)
        assert r1.dependent == truth
