"""The incremental re-analysis gauntlet (repro.core.incremental).

The module's contract is *delta ≡ full*: after any sequence of edits,
the incrementally maintained graph must be bit-identical — same edge
list, same DOT text, same ``edge_dicts`` serde — to a cold full
re-analysis of the current program.  This suite enforces it over a
500-edit seeded storm, pins the efficiency claim (a single-statement
edit on a ~100-nest program re-queries < 10% of pairs), and checks the
degradation rule (a budget-degraded verdict is answered conservatively
but never retained).
"""

import random

import pytest

from repro.api import AnalysisConfig, AnalysisSession
from repro.core.incremental import (
    IncrementalMismatchError,
    IncrementalSession,
    full_graph,
)
from repro.fuzz.edits import EDIT_KINDS, mutate, storm_program
from repro.ir.program import reference_pairs
from repro.robust.budget import ResourceBudget
from repro.system.depsystem import Direction


def _assert_identical(session: IncrementalSession, program) -> None:
    reference = full_graph(program)
    assert session.graph.edges == reference.edges
    assert session.graph.to_dot() == reference.to_dot()
    assert session.graph.edge_dicts() == reference.edge_dicts()


class TestFirstUpdate:
    def test_first_update_is_a_full_analysis(self):
        program = storm_program(seed=0, statements=8, arrays=4)
        session = IncrementalSession()
        report = session.update(program)
        assert report.requery_fraction == 1.0
        assert report.reused_pairs == 0
        assert report.delta.dirty == tuple(range(8))
        _assert_identical(session, program)

    def test_unchanged_program_reuses_everything(self):
        program = storm_program(seed=0, statements=8, arrays=4)
        session = IncrementalSession()
        session.update(program)
        report = session.update(program)
        assert report.delta.unchanged
        assert report.requeried_pairs == 0
        assert report.requery_fraction == 0.0
        _assert_identical(session, program)

    def test_summary_shape(self):
        program = storm_program(seed=0, statements=4, arrays=3)
        report = IncrementalSession().update(program)
        summary = report.summary()
        for key in (
            "statements",
            "kept",
            "dirty",
            "removed",
            "pairs",
            "reused",
            "requeried",
            "requery_fraction",
            "degraded_pairs",
            "edges",
            "elapsed_ms",
        ):
            assert key in summary


class TestEditStorm:
    """The 500-edit gauntlet: every step verified against full."""

    def test_500_seeded_edits_stay_identical_to_full(self):
        rng = random.Random(20260807)
        program = storm_program(seed=20260807, statements=8, arrays=4)
        session = IncrementalSession()
        session.update(program, verify=True)
        kinds_seen = set()
        reused_any = 0
        for _ in range(500):
            program, description = mutate(program, rng, arrays=4)
            kinds_seen.add(description.split()[0])
            # verify=True runs the cold full analysis and raises
            # IncrementalMismatchError on any divergence.
            report = session.update(program, verify=True)
            assert report.verified
            reused_any += report.reused_pairs
        # the storm actually exercised every edit kind, and the delta
        # path actually reused work (it isn't full re-analysis in
        # disguise)
        assert kinds_seen == {"insert", "delete", "mutate"}
        assert reused_any > 0

    @pytest.mark.parametrize("seed", [1, 7])
    def test_interleaved_storms_with_shared_session(self, seed):
        """Alternating between two diverging programs still verifies:
        the pair cache only ever holds the *current* program's pairs,
        so flip-flopping editors cannot resurrect stale answers."""
        rng = random.Random(seed)
        base = storm_program(seed=seed, statements=6, arrays=3)
        left, _ = mutate(base, rng, arrays=3)
        right, _ = mutate(base, rng, arrays=3)
        session = IncrementalSession()
        for program in (base, left, right, left, base, right):
            session.update(program, verify=True)


class TestRequeryBound:
    """The headline efficiency claim on a ~100-nest program."""

    def test_single_statement_edits_requery_under_ten_percent(self):
        program = storm_program(seed=2026, statements=100, arrays=12)
        session = IncrementalSession()
        first = session.update(program)
        assert first.total_pairs > 500  # the program is actually dense
        rng = random.Random(99)
        kinds_seen = set()
        for _ in range(8):
            edited, description = mutate(program, rng, arrays=12)
            kinds_seen.add(description.split()[0])
            report = session.update(edited)
            assert report.requery_fraction < 0.10, (
                f"{description}: re-queried {report.requeried_pairs} of "
                f"{report.total_pairs} pairs"
            )
            _assert_identical(session, edited)
            # each trial edits the same base program, so re-seed it
            session.update(program)
        assert kinds_seen == {"insert", "delete", "mutate"}

    def test_kept_pairs_cost_no_engine_queries(self):
        program = storm_program(seed=2026, statements=100, arrays=12)
        session = IncrementalSession()
        session.update(program)
        rng = random.Random(3)
        edited, _ = mutate(program, rng, arrays=12)
        report = session.update(edited)
        assert report.reused_pairs + report.requeried_pairs == (
            report.total_pairs
        )
        assert report.reused_pairs > report.requeried_pairs * 9


class TestDegradation:
    """Degraded verdicts: conservative in the graph, never retained."""

    def test_degraded_pairs_are_conservative_and_not_cached(self):
        program = storm_program(seed=5, statements=6, arrays=3)
        blown = ResourceBudget(deadline_s=0.0)
        session = IncrementalSession(budget=blown)
        report = session.update(program)
        assert report.degraded_pairs > 0
        # degraded answers reach the graph as the lattice top ...
        degraded_edges = [
            e
            for e in session.graph.edges
            if any(c == Direction.ANY for c in e.vector)
        ]
        assert degraded_edges
        # ... but are excluded from the retained pair cache
        assert len(session._pair_results) == (
            report.total_pairs - report.degraded_pairs
        )

    def test_degraded_pairs_are_requeried_next_update(self):
        program = storm_program(seed=5, statements=6, arrays=3)
        blown = ResourceBudget(deadline_s=0.0)
        session = IncrementalSession(budget=blown)
        first = session.update(program)
        assert first.degraded_pairs > 0
        # lift the pressure: the same session, no budget, same program
        session.budget = None
        second = session.update(program)
        assert second.requeried_pairs == first.degraded_pairs
        # with the hedge lifted the graph now matches ungoverned full
        _assert_identical(session, program)
        third = session.update(program)
        assert third.requeried_pairs == 0

    def test_verify_raises_on_divergence(self):
        program = storm_program(seed=5, statements=6, arrays=3)
        session = IncrementalSession(budget=ResourceBudget(deadline_s=0.0))
        session.update(program)
        with pytest.raises(IncrementalMismatchError):
            # the degraded graph is conservative, not exact: verify
            # against the ungoverned full analysis must fail loudly
            session.verify()


class TestApiSurface:
    def test_analysis_session_update_delegates(self):
        program = storm_program(seed=11, statements=6, arrays=3)
        session = AnalysisSession(AnalysisConfig())
        assert session.graph is None
        report = session.update(program, verify=True)
        assert report.verified
        assert session.graph is not None
        assert len(session.graph.edges) == report.edges
        rng = random.Random(11)
        edited, _ = mutate(program, rng, arrays=3)
        second = session.update(edited, verify=True)
        assert second.reused_pairs > 0

    def test_incremental_shares_the_session_memoizer(self):
        program = storm_program(seed=11, statements=6, arrays=3)
        session = AnalysisSession(AnalysisConfig())
        session.update(program)
        assert session._incremental.memoizer is session.memoizer

    def test_edit_kinds_constant_is_exhaustive(self):
        assert set(EDIT_KINDS) == {"bound", "subscript", "insert", "delete"}

    def test_reference_pair_order_is_the_graph_order(self):
        # splice correctness rests on rebuilding edges in
        # reference_pairs order; pin that the order is deterministic
        program = storm_program(seed=11, statements=6, arrays=3)
        first = [
            (a.site_index, b.site_index)
            for a, b in reference_pairs(program)
        ]
        second = [
            (a.site_index, b.site_index)
            for a, b in reference_pairs(program)
        ]
        assert first == second
