"""Test configuration: src/ importability and a per-test time ceiling.

CI installs ``pytest-timeout`` (the ``dev`` extra) and passes
``--timeout`` explicitly.  Environments without the plugin still get a
hang guard: a SIGALRM-based fallback ceiling per test, so a robustness
regression (a quarantined case that really hangs, a watchdog that
waits forever) fails loudly instead of wedging the suite.
"""

import importlib.util
import os
import pathlib
import signal
import sys

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

_HAVE_PYTEST_TIMEOUT = importlib.util.find_spec("pytest_timeout") is not None
_FALLBACK_TIMEOUT_S = int(os.environ.get("REPRO_TEST_TIMEOUT_S", "300"))

if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        def _alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {_FALLBACK_TIMEOUT_S}s fallback "
                "ceiling (REPRO_TEST_TIMEOUT_S)"
            )

        previous = signal.signal(signal.SIGALRM, _alarm)
        signal.alarm(_FALLBACK_TIMEOUT_S)
        try:
            yield
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
