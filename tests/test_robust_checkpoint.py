"""Tests for crash-safe batch checkpoints (repro.robust.checkpoint).

The load-bearing acceptance property: a batch interrupted at any shard
boundary and resumed with ``--resume`` produces results and a counter
snapshot bit-identical to an uninterrupted run.  Safety net: corrupt,
truncated, version-skewed or wrong-batch checkpoints cold-start with a
warning, never a wrong answer.
"""

import json

import pytest

from repro.core.engine import PairQuery, analyze_batch
from repro.core.result import DependenceResult, DirectionResult
from repro.ir import builder as B
from repro.obs.sinks import CollectingSink
from repro.robust.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    BatchCheckpoint,
    decode_directions,
    decode_result,
    encode_directions,
    encode_result,
    fingerprint_batch,
)
from repro.robust.watchdog import QuarantinedCase


def _queries(n=6):
    nest = B.nest(("i", 1, 10), ("j", 1, 10))
    out = []
    for k in range(n):
        out.append(
            PairQuery(
                ref1=B.ref("a", [B.v("i") + k, B.v("j")], write=True),
                nest1=nest,
                ref2=B.ref("a", [B.v("i"), B.v("j") + 1]),
                nest2=nest,
            )
        )
    return out


class TestFingerprint:
    def test_stable(self):
        keys = [(1, 2, 3), (4, 5)]
        opts = {"improved": True, "fm_budget": 256}
        assert fingerprint_batch(keys, opts) == fingerprint_batch(keys, opts)

    def test_sensitive_to_keys_and_opts(self):
        keys = [(1, 2, 3)]
        opts = {"improved": True}
        assert fingerprint_batch(keys, opts) != fingerprint_batch(
            [(1, 2, 4)], opts
        )
        assert fingerprint_batch(keys, opts) != fingerprint_batch(
            keys, {"improved": False}
        )

    def test_handles_dataclass_opts(self):
        from repro.robust.budget import ResourceBudget

        opts = {"budget": ResourceBudget(deadline_s=1.0)}
        assert fingerprint_batch([], opts) != fingerprint_batch(
            [], {"budget": ResourceBudget(deadline_s=2.0)}
        )
        assert fingerprint_batch([], opts) != fingerprint_batch(
            [], {"budget": None}
        )


class TestResultSerde:
    def test_result_round_trip(self):
        result = DependenceResult(
            dependent=True,
            decided_by="fourier_motzkin",
            exact=True,
            witness=(1, 2, 1, 3),
            distance=(0, 1),
        )
        assert decode_result(encode_result(result)) == result

    def test_degraded_result_round_trip(self):
        result = DependenceResult(
            dependent=True,
            decided_by="budget",
            exact=False,
            degraded_reason="wall_clock",
        )
        assert decode_result(encode_result(result)) == result

    def test_directions_round_trip(self):
        directions = DirectionResult(
            vectors=frozenset({("<", "="), ("=", "*")}),
            n_common=2,
            exact=True,
            tests_performed=5,
        )
        assert decode_directions(encode_directions(directions)) == directions

    def test_none_directions(self):
        assert encode_directions(None) is None
        assert decode_directions(None) is None


class TestBatchCheckpointFile:
    def test_cold_without_resume(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{not json")
        ckpt = BatchCheckpoint(path, "fp")
        assert ckpt.load(resume=False) == {}

    def test_missing_file_is_silent_cold_start(self, tmp_path):
        ckpt = BatchCheckpoint(tmp_path / "absent.json", "fp")
        assert ckpt.load(resume=True) == {}

    def test_corrupt_file_warns_and_cold_starts(self, tmp_path):
        path = tmp_path / "ck.json"
        path.write_text("{truncated garbage")
        ckpt = BatchCheckpoint(path, "fp")
        with pytest.warns(RuntimeWarning, match="unusable checkpoint"):
            assert ckpt.load(resume=True) == {}

    def test_wrong_fingerprint_warns_and_cold_starts(self, tmp_path):
        path = tmp_path / "ck.json"
        BatchCheckpoint(path, "fp-one").record(0, [([], _stats(), "{}", [])], [])
        ckpt = BatchCheckpoint(path, "fp-two")
        with pytest.warns(RuntimeWarning, match="different batch"):
            assert ckpt.load(resume=True) == {}

    def test_version_skew_warns_and_cold_starts(self, tmp_path):
        path = tmp_path / "ck.json"
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION + 1,
            "fingerprint": "fp",
            "shards": {},
        }
        path.write_text(json.dumps(payload))
        ckpt = BatchCheckpoint(path, "fp")
        with pytest.warns(RuntimeWarning, match="version"):
            assert ckpt.load(resume=True) == {}

    def test_record_then_load_round_trip(self, tmp_path):
        path = tmp_path / "ck.json"
        answers = [
            (
                0,
                DependenceResult(dependent=True, decided_by="svpc"),
                DirectionResult(vectors=frozenset({("<",)}), n_common=1),
            )
        ]
        quarantined = QuarantinedCase(2, "b vs b", "timeout", 2)
        writer = BatchCheckpoint(path, "fp")
        writer.record(0, [(answers, _stats(), "{}", [])], [quarantined])
        writer.record(1, [(answers, _stats(), "{}", [])], [])

        done = BatchCheckpoint(path, "fp").load(resume=True)
        assert sorted(done) == [0, 1]
        outputs, quarantine = done[0]
        assert quarantine == [quarantined]
        got_answers, got_stats, got_memo, got_events = outputs[0]
        assert got_answers == answers
        assert got_memo == "{}"
        assert got_events == []

    def test_trace_events_refuse_to_checkpoint(self, tmp_path):
        ckpt = BatchCheckpoint(tmp_path / "ck.json", "fp")
        with pytest.raises(ValueError, match="not checkpointable"):
            ckpt.record(0, [([], _stats(), "{}", ["event"])], [])


def _stats():
    from repro.core.stats import AnalyzerStats

    return AnalyzerStats()


class TestEngineResume:
    def test_resume_is_bit_identical(self, tmp_path):
        queries = _queries()
        path = tmp_path / "ck.json"
        first = analyze_batch(queries, jobs=3, checkpoint=path)
        assert path.exists()
        resumed = analyze_batch(queries, jobs=3, checkpoint=path, resume=True)
        assert [(o.result, o.directions) for o in first.outcomes] == [
            (o.result, o.directions) for o in resumed.outcomes
        ]
        assert (
            first.stats.registry.counter_snapshot()
            == resumed.stats.registry.counter_snapshot()
        )

    def test_partial_resume_is_bit_identical(self, tmp_path):
        queries = _queries()
        path = tmp_path / "ck.json"
        first = analyze_batch(queries, jobs=3, checkpoint=path)

        # Simulate a crash that lost the last shard: drop one entry
        # from the (valid) checkpoint image.
        payload = json.loads(path.read_text())
        assert len(payload["shards"]) == 3
        dropped = sorted(payload["shards"])[-1]
        del payload["shards"][dropped]
        path.write_text(json.dumps(payload))

        resumed = analyze_batch(queries, jobs=3, checkpoint=path, resume=True)
        assert [(o.result, o.directions) for o in first.outcomes] == [
            (o.result, o.directions) for o in resumed.outcomes
        ]
        assert (
            first.stats.registry.counter_snapshot()
            == resumed.stats.registry.counter_snapshot()
        )

    def test_changed_options_cold_start_with_warning(self, tmp_path):
        queries = _queries()
        path = tmp_path / "ck.json"
        analyze_batch(queries, jobs=2, checkpoint=path)
        with pytest.warns(RuntimeWarning, match="different batch"):
            report = analyze_batch(
                queries,
                jobs=2,
                checkpoint=path,
                resume=True,
                want_witness=True,  # changes the batch fingerprint
            )
        assert len(report.outcomes) == len(queries)

    def test_checkpoint_refuses_trace_sink(self, tmp_path):
        with pytest.raises(ValueError, match="trace"):
            analyze_batch(
                _queries(2),
                jobs=1,
                checkpoint=tmp_path / "ck.json",
                sink=CollectingSink(),
            )

    def test_resume_without_checkpoint_runs_cold(self):
        report = analyze_batch(_queries(2), jobs=1)
        assert len(report.outcomes) == 2
