"""Tests for the seeded fuzz-case generator."""

import pytest
from hypothesis import HealthCheck, given, settings

from repro.fuzz.generator import (
    MAX_POINTS,
    TIERS,
    FuzzCase,
    _always_nonempty,
    _space_size,
    case_seed,
    case_strategy,
    generate_case,
    generate_cases,
)
from repro.opt import compile_source


class TestDeterminism:
    def test_same_seed_same_cases(self):
        first = generate_cases(7, 40)
        second = generate_cases(7, 40)
        assert [c.to_dict() for c in first] == [c.to_dict() for c in second]

    def test_different_seeds_differ(self):
        a = [c.to_dict() for c in generate_cases(0, 20)]
        b = [c.to_dict() for c in generate_cases(1, 20)]
        assert a != b

    def test_case_seed_is_pure(self):
        assert case_seed(3, 5) == case_seed(3, 5)
        assert case_seed(3, 5) != case_seed(3, 6)
        assert case_seed(3, 5) != case_seed(4, 5)

    def test_round_robin_tiers(self):
        cases = generate_cases(0, 10, tiers=("constant", "symbolic"))
        assert [c.tier for c in cases] == ["constant", "symbolic"] * 5

    def test_no_tiers_rejected(self):
        with pytest.raises(ValueError):
            generate_cases(0, 5, tiers=())

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            generate_case(0, 0, "nope")


class TestCaseValidity:
    @pytest.mark.parametrize("tier", TIERS)
    def test_spaces_bounded(self, tier):
        for index in range(25):
            case = generate_case(0, index, tier)
            assert _space_size(case.nest1, case.env, MAX_POINTS) <= MAX_POINTS
            assert _space_size(case.nest2, case.env, MAX_POINTS) <= MAX_POINTS

    @pytest.mark.parametrize("tier", TIERS)
    def test_ref1_writes_same_array(self, tier):
        for index in range(25):
            case = generate_case(0, index, tier)
            assert case.ref1.is_write
            assert case.ref1.array == case.ref2.array
            assert case.ref1.rank == case.ref2.rank

    def test_symbolic_env_covers_symbols(self):
        for index in range(40):
            case = generate_case(0, index, "symbolic")
            free = (
                case.nest1.symbols()
                | case.nest2.symbols()
                | (case.ref1.variables() - set(case.nest1.variables))
                | (case.ref2.variables() - set(case.nest2.variables))
            )
            assert free <= set(case.env)

    def test_triangular_nests_always_nonempty(self):
        # The analyzer's model assumes every loop runs at least once;
        # the triangular builder must respect that (section 5).
        for index in range(40):
            case = generate_case(0, index, "triangular")
            assert _always_nonempty(case.nest1, case.env)
            assert _always_nonempty(case.nest2, case.env)

    def test_degenerate_constant_subscripts_need_nonempty_loops(self):
        # The constant fast path assumes non-empty loops, so a case
        # with an all-constant subscript pair must never sit under a
        # zero-iteration nest.
        for index in range(60):
            case = generate_case(0, index, "degenerate")
            all_const = all(
                s.is_constant for s in case.ref1.subscripts + case.ref2.subscripts
            )
            if all_const:
                assert _space_size(case.nest1, case.env, MAX_POINTS) > 0
                assert _space_size(case.nest2, case.env, MAX_POINTS) > 0


class TestSerde:
    @pytest.mark.parametrize("tier", TIERS)
    def test_dict_round_trip(self, tier):
        for index in range(10):
            case = generate_case(5, index, tier)
            clone = FuzzCase.from_dict(case.to_dict())
            assert clone.to_dict() == case.to_dict()
            assert clone.ref1 == case.ref1
            assert clone.nest1.loops == case.nest1.loops
            assert clone.ref2 == case.ref2
            assert clone.nest2.loops == case.nest2.loops
            assert clone.env == case.env

    @pytest.mark.parametrize("tier", TIERS)
    def test_source_round_trip_parses(self, tier):
        for index in range(10):
            case = generate_case(2, index, tier)
            result = compile_source(case.to_source(), name="fuzz", strict=False)
            assert not result.skipped
            arrays = {
                ref.array
                for stmt in result.program.statements
                for ref in (stmt.write, *stmt.reads)
            }
            assert case.ref1.array in arrays


class TestHypothesisStrategy:
    @given(case=case_strategy(tier="constant"))
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    def test_tiered_strategy(self, case):
        assert case.tier == "constant"
        assert case.ref1.is_write

    @given(pair_case=case_strategy())
    @settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow])
    def test_mixed_strategy(self, pair_case):
        assert pair_case.tier in TIERS
