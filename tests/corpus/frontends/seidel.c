/* Gauss-Seidel 2D sweep: an in-place stencil, every edge carried. */

void seidel(int n) {
    int i, j;
    for (i = 1; i < n - 1; i++)
        for (j = 1; j < n - 1; j++)
            A[i][j] = A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1] + A[i][j];
}
