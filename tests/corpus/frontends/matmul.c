/* Square matrix multiply, ijk order, with a zeroing sweep. */

void matmul(int n) {
    int i, j, k;
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            C[i][j] = 0;
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
            for (k = 0; k < n; k++)
                C[i][j] += A[i][k] * B[k][j];
}
