"""Forward substitution against a unit lower-triangular matrix.

The inner loop's triangular bound ``range(0, i)`` is affine in the
outer induction variable — the shape the paper's single-variable and
Fourier-Motzkin machinery is built for.
"""


def trisolve(L, x, b, n):
    for i in range(0, n):
        x[i] = b[i]
    for i in range(0, n):
        for j in range(0, i):
            x[i] -= L[i][j] * x[j]
