/* Row-sum reduction into a vector, then a running prefix pass. */

void rowsum(int n, int m) {
    int i, j;
    for (i = 0; i < n; i++)
        s[i] = 0;
    for (i = 0; i < n; i++)
        for (j = 0; j < m; j++)
            s[i] += A[i][j];
    for (i = 1; i < n; i++)
        s[i] += s[i - 1];
}
