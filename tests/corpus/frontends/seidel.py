"""Gauss-Seidel 2D sweep: an in-place stencil, every edge carried."""


def seidel(A, n):
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            A[i][j] = A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1] + A[i][j]
