"""Deliberately mixed file: one clean nest plus one of each refusal.

Every construct below that the Python frontend cannot translate must
surface as a skip record with its stable reason code — never be
silently dropped.  The golden file pins the exact code list.
"""


def clean(A, B, n):
    for i in range(1, n):
        A[i] = A[i - 1] + B[i]


def refusals(A, B, items, f, n, m):
    for x in items:  # non-range-loop
        A[x] = 0
    while n > 0:  # unsupported-statement
        n -= 1
    for i in range(0, n, m):  # non-literal-step
        A[i] = 0
    for i in range(0, n):
        A[i * m] = 0  # nonaffine-subscript (symbolic stride)
    for i in range(0, n):
        A[i:n] = 0  # slice-subscript
    for i in range(0, n):
        A[f(i)] = 0  # call-expression
    for i in range(0, n):
        A[i] = B[i]
        break  # control-flow
    row = A
    for i in range(0, n):
        row[i] = 0  # alias (row is scalar-assigned)
