"""Jacobi 2D: two sweeps, compute into B then copy back into A."""


def jacobi2d(A, B, n):
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            B[i][j] = A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1]
    for i in range(1, n - 1):
        for j in range(1, n - 1):
            A[i][j] = B[i][j]
