"""Matrix multiply over flat row-major buffers with a literal stride.

The linearized subscript ``i * 64 + j`` stays affine because the
stride is an integer literal; a symbolic stride would be skipped as
``nonaffine-subscript``.
"""


def matmul_flat(A, B, C):
    for i in range(0, 64):
        for j in range(0, 64):
            C[i * 64 + j] = 0
    for i in range(0, 64):
        for j in range(0, 64):
            for k in range(0, 64):
                C[i * 64 + j] += A[i * 64 + k] * B[k * 64 + j]
