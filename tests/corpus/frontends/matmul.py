"""Square matrix multiply, ijk order, with a zeroing sweep."""


def matmul(A, B, C, n):
    for i in range(0, n):
        for j in range(0, n):
            C[i][j] = 0
    for i in range(0, n):
        for j in range(0, n):
            for k in range(0, n):
                C[i][j] += A[i][k] * B[k][j]
