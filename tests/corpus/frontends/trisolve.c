/* Forward substitution against a unit lower-triangular matrix. */

void trisolve(int n) {
    int i, j;
    for (i = 0; i < n; i++)
        x[i] = b[i];
    for (i = 0; i < n; i++)
        for (j = 0; j < i; j++)
            x[i] -= L[i][j] * x[j];
}
