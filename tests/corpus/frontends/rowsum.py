"""Row-sum reduction into a vector, then a running prefix pass."""


def rowsum(A, s, n, m):
    for i in range(0, n):
        s[i] = 0
    for i in range(0, n):
        for j in range(0, m):
            s[i] += A[i][j]
    for i in range(1, n):
        s[i] += s[i - 1]
