/* Deliberately mixed file: one clean nest plus one of each refusal.
 *
 * Every construct the C frontend cannot translate must surface as a
 * skip record with its stable reason code — never be silently
 * dropped.  The golden file pins the exact code list.
 */

void clean(int n) {
    int i;
    for (i = 1; i < n; i++)
        A[i] = A[i - 1] + B[i];
}

void refusals(int n, int m) {
    int i;
    int *p;                    /* pointer declarator */
    while (n > 0)              /* unsupported-statement */
        n = n - 1;
    for (i = 0; i < n; i += m) /* non-literal-step */
        A[i] = 0;
    for (i = 0; i < n; i++)
        A[i * m] = 0;          /* nonaffine-subscript (symbolic stride) */
    for (i = 0; i < n; i++)
        p[i] = 0;              /* pointer */
    for (i = 0; i < n; i++)
        A[i % 4] = 0;          /* unsupported-expression */
    for (i = n; i > 0; i++)    /* malformed-loop (runs away from bound) */
        A[i] = 0;
    for (i = 0; i < n; i++) {
        A[i] = B[i];
        continue;              /* control-flow */
    }
}
