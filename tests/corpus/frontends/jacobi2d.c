/* Jacobi 2D: two sweeps, compute into B then copy back into A. */

void jacobi2d(int n) {
    int i, j;
    for (i = 1; i < n - 1; i++)
        for (j = 1; j < n - 1; j++)
            B[i][j] = A[i - 1][j] + A[i + 1][j] + A[i][j - 1] + A[i][j + 1];
    for (i = 1; i < n - 1; i++)
        for (j = 1; j < n - 1; j++)
            A[i][j] = B[i][j];
}
