/* Matrix multiply over flat row-major buffers with a literal stride. */

void matmul_flat(void) {
    int i, j, k;
    for (i = 0; i < 64; i++)
        for (j = 0; j < 64; j++)
            C[i * 64 + j] = 0;
    for (i = 0; i < 64; i++)
        for (j = 0; j < 64; j++)
            for (k = 0; k < 64; k++)
                C[i * 64 + j] += A[i * 64 + k] * B[k * 64 + j];
}
