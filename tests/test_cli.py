"""Tests for the command-line interfaces."""

import pytest

from repro.cli import main as repro_main
from repro.harness.cli import main as harness_main

SOURCE = """
for i = 2 to 10 do
  for j = 1 to 10 do
    a[i][j] = a[i - 1][j]
  end
end
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.loop"
    path.write_text(SOURCE)
    return str(path)


class TestBatchCommand:
    def test_batch_on_source_file(self, source_file, capsys):
        assert repro_main(["batch", source_file, "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        assert "unique problems" in out
        assert "memo hit rates" in out

    def test_batch_warm_cache_round_trip(self, source_file, tmp_path, capsys):
        cache = str(tmp_path / "cache.json")
        assert repro_main(
            ["batch", source_file, "--jobs", "1", "--warm-cache", cache]
        ) == 0
        cold = capsys.readouterr().out
        assert "dependence tests run" in cold
        # Second run warm-starts from the saved table: zero tests.
        assert repro_main(
            ["batch", source_file, "--jobs", "1", "--warm-cache", cache]
        ) == 0
        warm = capsys.readouterr().out
        assert "0 dependence tests run" in warm

    def test_batch_corrupt_warm_cache(self, source_file, tmp_path, capsys):
        # A corrupt cache costs warmth, never availability: the run
        # warns, analyzes cold, and rewrites the cache with good data.
        cache = tmp_path / "bad.json"
        cache.write_text('{"garbage": true')
        assert repro_main(
            ["batch", source_file, "--warm-cache", str(cache)]
        ) == 0
        captured = capsys.readouterr()
        assert "warning" in captured.err
        assert "dependence tests run" in captured.out
        # The rewrite repaired the file: a second run warm-starts.
        assert repro_main(
            ["batch", source_file, "--warm-cache", str(cache)]
        ) == 0
        assert "0 dependence tests run" in capsys.readouterr().out

    def test_batch_sharded_suite(self, capsys):
        assert repro_main(
            ["batch", "--scale", "0.05", "--jobs", "2", "--no-directions"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 worker(s)" in out

    def test_batch_verbose_marks_dedup(self, tmp_path, capsys):
        path = tmp_path / "dup.loop"
        path.write_text(
            "for i = 1 to 10 do\n"
            "  a[i+1] = a[i]\n"
            "  a[i+1] = a[i]\n"
            "end\n"
        )
        assert repro_main(["batch", str(path), "--jobs", "1", "-v"]) == 0
        out = capsys.readouterr().out
        assert "(deduped)" in out


class TestAnalyzeCommand:
    def test_analyze(self, source_file, capsys):
        # Exit 1: dependences were found (the documented convention).
        assert repro_main(["analyze", source_file]) == 1
        out = capsys.readouterr().out
        assert "DEPENDENT" in out
        assert "(< =)" in out
        assert "distance (1, 0)" in out

    def test_analyze_no_pairs(self, tmp_path, capsys):
        path = tmp_path / "empty.loop"
        path.write_text("x = 1\n")
        assert repro_main(["analyze", str(path)]) == 0
        assert "no testable" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert repro_main(["analyze", "/nonexistent/x.loop"]) == 2
        assert "error" in capsys.readouterr().err

    def test_permissive_skip_warning(self, tmp_path, capsys):
        path = tmp_path / "bad.loop"
        path.write_text("for i = 1 to 9 do\n  a[i*i] = 0\nend\n")
        assert repro_main(["analyze", str(path)]) == 0
        assert "skipped" in capsys.readouterr().err


class TestParallelizeCommand:
    def test_report(self, source_file, capsys):
        assert repro_main(["parallelize", source_file, "-v"]) == 0
        out = capsys.readouterr().out
        assert "[serial  ]" in out
        assert "[PARALLEL]" in out
        assert "carried by" in out


class TestDepsCommand:
    def test_edges(self, source_file, capsys):
        assert repro_main(["deps", source_file]) == 1
        out = capsys.readouterr().out
        assert "flow" in out
        assert "[carried]" in out

    def test_no_deps(self, tmp_path, capsys):
        path = tmp_path / "indep.loop"
        path.write_text("for i = 1 to 9 do\n  a[i] = b[i]\nend\n")
        assert repro_main(["deps", str(path)]) == 0
        # a flow pair a-b does not exist; b is read-only, a write-only
        assert "no dependences" in capsys.readouterr().out


class TestVectorizeCommand:
    def test_vectorize(self, tmp_path, capsys):
        path = tmp_path / "v.loop"
        path.write_text(
            "for i = 2 to 100 do\n"
            "  a[i] = b[i] + 1\n"
            "  c[i] = a[i - 1] + 2\n"
            "end\n"
        )
        assert repro_main(["vectorize", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.count("VECTOR") == 2

    def test_vectorize_serial(self, source_file, capsys):
        assert repro_main(["vectorize", source_file]) == 0
        out = capsys.readouterr().out
        assert "DO i (serial)" in out


class TestDotCommand:
    def test_dot(self, source_file, capsys):
        assert repro_main(["dot", source_file]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert "flow" in out


class TestExplainCommand:
    def test_list_pairs(self, source_file, capsys):
        assert repro_main(["explain", source_file, "--list"]) == 0
        out = capsys.readouterr().out
        assert "[0] a[i][j] vs a[i - 1][j]" in out

    def test_no_pair_hints_at_indices(self, source_file, capsys):
        assert repro_main(["explain", source_file]) == 0
        captured = capsys.readouterr()
        assert "[0]" in captured.out
        assert "--pair" in captured.err

    def test_explain_renders_decision_path(self, source_file, capsys):
        assert repro_main(["explain", source_file, "--pair", "0"]) == 0
        out = capsys.readouterr().out
        assert "query[0] analyze: a[i][j] vs a[i - 1][j]" in out
        assert "memo[no_bounds]: miss" in out
        assert "egcd: solvable" in out
        assert "cascade svpc: dependent" in out
        assert "=> dependent [svpc]" in out
        assert "direction vector" in out  # refinement part

    def test_explain_no_directions(self, source_file, capsys):
        assert repro_main(
            ["explain", source_file, "--pair", "0", "--no-directions"]
        ) == 0
        out = capsys.readouterr().out
        assert "=> dependent [svpc]" in out
        assert "directions:" not in out

    def test_explain_jsonl_dump(self, source_file, tmp_path, capsys):
        from repro.obs.events import read_jsonl

        dump = str(tmp_path / "trace.jsonl")
        assert repro_main(
            ["explain", source_file, "--pair", "0", "--jsonl", dump]
        ) == 0
        events = list(read_jsonl(dump))
        kinds = [type(e).__name__ for e in events]
        assert kinds[0] == "QueryStart" and kinds[-1] == "QueryEnd"
        assert f"wrote {len(events)} events" in capsys.readouterr().err

    def test_pair_out_of_range(self, source_file, capsys):
        assert repro_main(["explain", source_file, "--pair", "9"]) == 2
        assert "out of range" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            repro_main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestStatsCommand:
    def test_stats_text_dump(self, source_file, capsys):
        assert repro_main(["stats", source_file]) == 0
        out = capsys.readouterr().out
        assert "queries.total" in out
        assert "tests.decided_by[svpc]" in out
        assert "time.cascade.svpc" in out

    def test_stats_json_dump(self, source_file, capsys):
        import json

        assert repro_main(["stats", source_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scalars"]["queries.total"] == 2
        assert "histograms" in payload


class TestBatchTrace:
    def test_batch_trace_writes_jsonl(self, source_file, tmp_path, capsys):
        from repro.obs.events import read_jsonl

        trace = str(tmp_path / "batch.jsonl")
        assert repro_main(
            ["batch", source_file, "--jobs", "1", "--trace", trace]
        ) == 0
        events = list(read_jsonl(trace))
        assert events, "trace file must not be empty"
        captured = capsys.readouterr()
        assert f"wrote {len(events)} trace events" in captured.err


class TestHarnessCli:
    def test_single_experiment(self, capsys):
        assert harness_main(["table1", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "TOTAL" in out

    def test_unknown_experiment(self, capsys):
        assert harness_main(["tableX"]) == 2

    def test_tables_forwarding(self, capsys):
        assert repro_main(["tables", "table1", "--scale", "0.02"]) == 0
        assert "Table 1" in capsys.readouterr().out


class TestFuzzCommand:
    def test_small_clean_campaign(self, capsys):
        assert repro_main(["fuzz", "--seed", "0", "-n", "10"]) == 0
        out = capsys.readouterr().out
        assert "discrepancies: 0" in out
        assert "cases by tier" in out

    def test_output_reproducible_across_jobs(self, capsys):
        assert repro_main(["fuzz", "--seed", "2", "-n", "10", "-j", "1"]) == 0
        serial = capsys.readouterr().out
        assert repro_main(["fuzz", "--seed", "2", "-n", "10", "-j", "2"]) == 0
        sharded = capsys.readouterr().out
        assert serial == sharded

    def test_tier_selection(self, capsys):
        assert repro_main(
            ["fuzz", "-n", "4", "--tier", "constant", "--tier", "degenerate"]
        ) == 0
        out = capsys.readouterr().out
        assert "tiers=constant,degenerate" in out

    def test_stats_json(self, tmp_path, capsys):
        import json as json_mod

        stats = tmp_path / "stats.json"
        assert repro_main(
            ["fuzz", "-n", "6", "--stats-json", str(stats)]
        ) == 0
        payload = json_mod.loads(stats.read_text())
        assert payload["scalars"]["fuzz.cases"] == 6

    def test_replay_empty_corpus(self, tmp_path, capsys):
        assert repro_main(["fuzz", "--replay", str(tmp_path)]) == 0
        assert "no corpus cases" in capsys.readouterr().out

    def test_replay_corpus(self, tmp_path, capsys):
        from repro.fuzz.corpus import save_case
        from repro.fuzz.generator import generate_case

        for index in range(3):
            save_case(generate_case(0, index, "constant"), tmp_path)
        assert repro_main(["fuzz", "--replay", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "replayed 3 corpus case(s)" in out
        assert "discrepancies: 0" in out
