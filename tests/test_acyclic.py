"""Tests for the Acyclic test."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deptests.acyclic import (
    AcyclicTest,
    build_constraint_graph,
    _graph_has_cycle,
)
from repro.deptests.base import Verdict
from repro.oracle.enumerate import solve_system
from repro.system.constraints import ConstraintSystem

small = st.integers(min_value=-8, max_value=8)


def _system(n, *rows):
    system = ConstraintSystem(tuple(f"t{i}" for i in range(n)))
    for coeffs, bound in rows:
        system.add(coeffs, bound)
    return system


class TestGraph:
    def test_equality_pair_creates_cycle(self):
        # t0 = t1 kept as two inequalities: the canonical cycle the paper
        # says makes GCD preprocessing a prerequisite.
        system = _system(2, ([1, -1], 0), ([-1, 1], 0))
        assert _graph_has_cycle(build_constraint_graph(system))
        assert not AcyclicTest().applicable(system)

    def test_one_direction_no_cycle(self):
        system = _system(2, ([1, -1], 0))  # t0 <= t1
        assert not _graph_has_cycle(build_constraint_graph(system))
        assert AcyclicTest().applicable(system)

    def test_single_var_constraints_no_edges(self):
        system = _system(2, ([1, 0], 5), ([0, -1], 3))
        assert build_constraint_graph(system) == []

    def test_three_variable_constraint_edges(self):
        # t0 + 2t1 - t2 <= 0 contributes 6 ordered-pair edges.
        system = _system(3, ([1, 2, -1], 0))
        edges = build_constraint_graph(system)
        assert len(edges) == 6
        assert (("+", 0), ("-", 1)) in edges
        assert (("+", 0), ("+", 2)) in edges


class TestDecisions:
    def test_paper_flavor_example(self):
        # A chain: t0 <= t1, t1 <= t2, with box bounds. Acyclic; dependent.
        system = _system(
            3,
            ([1, -1, 0], 0),
            ([0, 1, -1], 0),
            ([1, 0, 0], 10),
            ([-1, 0, 0], -1),
            ([0, 0, 1], 10),
            ([0, 0, -1], -1),
        )
        result = AcyclicTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)

    def test_independent_chain(self):
        # t0 >= 5, t0 <= t1, t1 <= 3: infeasible, found by elimination.
        system = _system(
            2,
            ([-1, 0], -5),
            ([1, -1], 0),
            ([0, 1], 3),
        )
        result = AcyclicTest().run(system)
        assert result.verdict is Verdict.INDEPENDENT

    def test_deferred_unbounded_variable(self):
        # t1 has no lower bound; t0 <= t1 is satisfiable by pushing t1 up?
        # No: t0 <= t1 bounds t0 above through t1... t1 only appears with
        # negative sign so it may float high: always satisfiable.
        system = _system(2, ([1, -1], 0), ([-1, 0], -1), ([1, 0], 10))
        result = AcyclicTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)

    def test_deferred_low_variable(self):
        # t0 only bounded above (by t1 and constant); no lower bound.
        system = _system(2, ([1, -1], -3), ([0, 1], 4), ([0, -1], 0))
        result = AcyclicTest().run(system)
        assert result.verdict is Verdict.DEPENDENT
        assert system.evaluate(result.witness)

    def test_cycle_reports_not_applicable(self):
        system = _system(2, ([1, -1], -1), ([-1, 1], -1))
        result = AcyclicTest().run(system)
        assert result.verdict is Verdict.NOT_APPLICABLE

    def test_partial_elimination_residual(self):
        # t2 is out of the (t0, t1) cycle and gets eliminated.
        system = _system(
            3,
            ([1, -1, 0], -1),
            ([-1, 1, 0], -1),
            ([0, 0, 1], 5),
            ([1, 0, 1], 8),
        )
        elimination = AcyclicTest().eliminate(system)
        assert elimination.verdict is None
        residual_vars = elimination.residual.used_variables()
        assert 2 not in residual_vars


class TestExactnessAgainstOracle:
    @given(
        st.lists(
            st.tuples(
                st.tuples(small, small, small).filter(lambda c: any(c)),
                st.integers(-10, 20),
            ),
            min_size=1,
            max_size=6,
        )
    )
    @settings(max_examples=300)
    def test_agrees_with_enumeration_when_applicable(self, rows):
        system = _system(3, *rows)
        # Box the variables so brute force terminates and stays aligned
        # with the test (the test must see the same system).
        for var in range(3):
            lo_row = [0, 0, 0]
            lo_row[var] = -1
            hi_row = [0, 0, 0]
            hi_row[var] = 1
            system.add(lo_row, 6)  # t >= -6
            system.add(hi_row, 6)  # t <= 6
        test = AcyclicTest()
        result = test.run(system)
        if result.verdict is Verdict.NOT_APPLICABLE:
            return
        brute = solve_system(system, -6, 6)
        assert (brute is not None) == (result.verdict is Verdict.DEPENDENT)
        if result.witness is not None:
            assert system.evaluate(result.witness)

    @given(
        st.lists(
            st.tuples(
                st.tuples(small, small, small).filter(lambda c: any(c)),
                st.integers(-10, 20),
            ),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=200)
    def test_elimination_matches_graph_acyclicity(self, rows):
        """The elimination runs to completion iff the graph is acyclic."""
        system = _system(3, *rows)
        test = AcyclicTest()
        elimination = test.eliminate(system)
        if elimination.verdict is not None:
            return  # decided early (contradiction): no claim either way
        # stuck => there must be a cycle
        assert _graph_has_cycle(build_constraint_graph(system))
