"""Tests for the mini-Fortran lexer, parser and lowering."""

import pytest

from repro.ir.program import reference_pairs
from repro.lang import (
    Access,
    Assign,
    BinOp,
    ForLoop,
    LexError,
    LowerError,
    Name,
    ParseError,
    Read,
    lower,
    parse,
    tokenize,
)
from repro.lang.tokens import TokenKind


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("a[i] = b + 3 * c")
        kinds = [t.kind for t in tokens]
        assert TokenKind.IDENT in kinds
        assert TokenKind.LBRACKET in kinds
        assert kinds[-1] == TokenKind.EOF
        assert kinds[-2] == TokenKind.NEWLINE

    def test_keywords_recognized(self):
        tokens = tokenize("for i = 1 to 10 do")
        assert tokens[0].kind == TokenKind.KEYWORD
        assert tokens[0].text == "for"

    def test_comments_stripped(self):
        tokens = tokenize("x = 1 # a comment\ny = 2")
        texts = [t.text for t in tokens]
        assert "comment" not in " ".join(texts)

    def test_newlines_collapse(self):
        tokens = tokenize("x = 1\n\n\ny = 2")
        newlines = [t for t in tokens if t.kind == TokenKind.NEWLINE]
        assert len(newlines) == 2

    def test_line_numbers(self):
        tokens = tokenize("x = 1\ny = 2")
        y_token = [t for t in tokens if t.text == "y"][0]
        assert y_token.line == 2

    def test_bad_character(self):
        with pytest.raises(LexError):
            tokenize("x = $")


class TestParser:
    def test_scalar_assign(self):
        program = parse("x = 3 + 4")
        (stmt,) = program.body
        assert isinstance(stmt, Assign)
        assert isinstance(stmt.target, Name)

    def test_array_assign(self):
        program = parse("a[i+1][j] = a[i][j]")
        (stmt,) = program.body
        assert isinstance(stmt.target, Access)
        assert len(stmt.target.subscripts) == 2
        assert isinstance(stmt.expr, Access)

    def test_read(self):
        program = parse("read(n)")
        (stmt,) = program.body
        assert isinstance(stmt, Read) and stmt.ident == "n"

    def test_loop(self):
        program = parse(
            "for i = 1 to 10 do\n  a[i] = 0\nend for"
        )
        (loop,) = program.body
        assert isinstance(loop, ForLoop)
        assert loop.var == "i" and loop.step == 1
        assert len(loop.body) == 1

    def test_loop_step(self):
        program = parse("for i = 1 to 10 step 2 do\nend")
        (loop,) = program.body
        assert loop.step == 2

    def test_negative_step(self):
        program = parse("for i = 10 to 1 step -1 do\nend")
        (loop,) = program.body
        assert loop.step == -1

    def test_zero_step_rejected(self):
        with pytest.raises(ParseError):
            parse("for i = 1 to 10 step 0 do\nend")

    def test_nested_loops(self):
        program = parse(
            "for i = 1 to n do\n"
            "  for j = 1 to i do\n"
            "    a[i][j] = 1\n"
            "  end for\n"
            "end for"
        )
        (outer,) = program.body
        (inner,) = outer.body
        assert isinstance(inner, ForLoop) and inner.var == "j"

    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse("for i = 1 to 10 do\n  a[i] = 0\n")

    def test_precedence(self):
        program = parse("x = 1 + 2 * 3")
        (stmt,) = program.body
        assert isinstance(stmt.expr, BinOp) and stmt.expr.op == "+"
        assert isinstance(stmt.expr.right, BinOp)
        assert stmt.expr.right.op == "*"

    def test_unary_minus(self):
        program = parse("x = -i + 3")
        (stmt,) = program.body
        assert isinstance(stmt.expr, BinOp)

    def test_parentheses(self):
        program = parse("x = 2 * (i + 1)")
        (stmt,) = program.body
        assert stmt.expr.op == "*"

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse("to = 3")
        with pytest.raises(ParseError):
            parse("[x] = 3")


class TestLowering:
    def test_simple_loop(self):
        result = lower(parse("for i = 1 to 10 do\n  a[i+1] = a[i]\nend"))
        (stmt,) = result.program.statements
        assert str(stmt.write) == "a[i + 1]"
        assert stmt.nest.depth == 1

    def test_reference_pairs_extracted(self):
        result = lower(
            parse(
                "for i = 1 to 10 do\n"
                "  a[i] = a[i+1] + b[i]\n"
                "  b[i] = a[i]\n"
                "end"
            )
        )
        pairs = reference_pairs(result.program)
        arrays = sorted({p[0].ref.array for p in pairs})
        assert arrays == ["a", "b"]

    def test_symbols_from_read(self):
        result = lower(parse("read(n)\nfor i = 1 to n do\n  a[i] = 0\nend"))
        assert result.symbols == {"n"}
        (stmt,) = result.program.statements
        assert stmt.nest.symbols() == {"n"}

    def test_nonaffine_subscript_strict(self):
        with pytest.raises(LowerError):
            lower(parse("for i = 1 to 9 do\n  a[i*i] = 0\nend"))

    def test_nonaffine_subscript_permissive(self):
        result = lower(
            parse("for i = 1 to 9 do\n  a[i*i] = 0\nend"), strict=False
        )
        assert result.program.statements == []
        assert result.skipped

    def test_indirect_subscript_rejected(self):
        with pytest.raises(LowerError):
            lower(parse("for i = 1 to 9 do\n  a[b[i]] = 0\nend"))

    def test_varying_scalar_in_subscript_rejected(self):
        source = parse(
            "for i = 1 to 9 do\n  k = k + i\n  a[k] = 0\nend"
        )
        with pytest.raises(LowerError):
            lower(source)

    def test_unnormalized_step_rejected(self):
        with pytest.raises(LowerError):
            lower(parse("for i = 1 to 9 step 2 do\n  a[i] = 0\nend"))

    def test_scalar_statements_ignored(self):
        result = lower(parse("x = 3\nfor i = 1 to 5 do\n  a[i] = x + 0*i\nend"),
                       strict=False)
        # x is assigned, so a[x...] would be rejected; but the RHS here
        # uses x only outside subscripts -- allowed.
        assert len(result.program.statements) <= 1
