"""Tests for the synthetic PERFECT workload generator."""

import pytest

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.perfect import (
    BUCKETS,
    PATTERNS,
    PROGRAM_SPECS,
    SYMBOLIC_PATTERNS,
    generate_program,
    load_suite,
    make_query,
    suite_totals,
)


class TestPatternCalibration:
    """Every pattern family must land in its intended cascade bucket —
    this is what makes the regenerated Table 1 a genuine measurement."""

    @pytest.mark.parametrize("bucket", sorted(PATTERNS))
    def test_plain_bucket(self, bucket):
        for idx in range(40):
            for wrapper in (0, 1, 2):
                query = make_query(bucket, idx, wrapper)
                analyzer = DependenceAnalyzer()
                result = analyzer.analyze(
                    query.ref1, query.nest1, query.ref2, query.nest2
                )
                assert result.decided_by == bucket, (
                    f"{bucket} idx={idx} wrapper={wrapper} "
                    f"decided by {result.decided_by}"
                )

    @pytest.mark.parametrize("bucket", sorted(SYMBOLIC_PATTERNS))
    def test_symbolic_bucket(self, bucket):
        for idx in range(30):
            query = make_query(bucket, idx, 0, symbolic=True)
            analyzer = DependenceAnalyzer()
            result = analyzer.analyze(
                query.ref1, query.nest1, query.ref2, query.nest2
            )
            assert result.decided_by == bucket

    @pytest.mark.parametrize(
        "bucket", [b for b in sorted(PATTERNS) if b not in ("constant", "gcd")]
    )
    def test_family_members_distinct(self, bucket):
        """Distinct idx values give distinct memo keys (improved scheme)."""
        from repro.system.depsystem import build_problem

        keys = set()
        for idx in range(30):
            query = make_query(bucket, idx, 0)
            problem = build_problem(
                query.ref1, query.nest1, query.ref2, query.nest2
            )
            reduced, _ = problem.eliminate_unused()
            keys.add(reduced.key_vector(with_bounds=True))
        assert len(keys) == 30

    def test_determinism(self):
        a = make_query("svpc", 7, 1)
        b = make_query("svpc", 7, 1)
        assert a == b


class TestGeneratedPrograms:
    def test_totals_match_spec(self):
        for spec in PROGRAM_SPECS:
            queries = generate_program(spec)
            by_bucket: dict[str, int] = {}
            for query in queries:
                by_bucket[query.bucket] = by_bucket.get(query.bucket, 0) + 1
            for bucket in BUCKETS:
                expected = spec.totals.get(bucket, 0)
                if spec.uniques.get(bucket, 0) == 0:
                    expected = 0
                assert by_bucket.get(bucket, 0) == expected, (
                    f"{spec.name}/{bucket}"
                )

    def test_unique_cases_match_spec(self):
        """Running with the improved memo yields the Table 3 unique counts."""
        for spec in PROGRAM_SPECS[:4]:
            memo = Memoizer(improved=True)
            analyzer = DependenceAnalyzer(memoizer=memo, want_witness=False)
            for query in generate_program(spec):
                analyzer.analyze(
                    query.ref1, query.nest1, query.ref2, query.nest2
                )
            counts = analyzer.stats.test_counts()
            for bucket in ("svpc", "acyclic", "loop_residue", "fourier_motzkin"):
                assert counts[bucket] == spec.uniques.get(bucket, 0), (
                    f"{spec.name}/{bucket}: {counts[bucket]} "
                    f"!= {spec.uniques.get(bucket, 0)}"
                )

    def test_scale_keeps_uniques(self):
        spec = PROGRAM_SPECS[0]
        small = generate_program(spec, scale=0.01)
        assert len(small) < len(generate_program(spec))
        # every bucket with uniques still present
        buckets = {q.bucket for q in small}
        for bucket in BUCKETS:
            if spec.uniques.get(bucket, 0) and spec.totals.get(bucket, 0):
                assert bucket in buckets

    def test_symbolic_only_in_table7_mode(self):
        spec = next(s for s in PROGRAM_SPECS if s.symbolic)
        plain = generate_program(spec, include_symbolic=False)
        symbolic = generate_program(spec, include_symbolic=True)
        assert not any(q.symbolic for q in plain)
        assert any(q.symbolic for q in symbolic)
        assert len(symbolic) > len(plain)


class TestSuite:
    def test_paper_totals(self):
        """The whole suite reproduces Table 1's TOTAL row exactly."""
        suite = load_suite()
        totals = suite_totals(suite)
        assert totals["constant"] == 11_859
        assert totals["gcd"] == 384
        assert totals["svpc"] == 5_176
        assert totals["acyclic"] == 323
        assert totals["loop_residue"] == 6
        assert totals["fourier_motzkin"] == 174

    def test_thirteen_programs(self):
        suite = load_suite()
        assert len(suite) == 13
        assert [p.name for p in suite] == [
            "AP", "CS", "LG", "LW", "MT", "NA", "OC",
            "SD", "SM", "SR", "TF", "TI", "WS",
        ]

    def test_total_source_lines(self):
        assert sum(p.lines for p in load_suite()) == 59_412
