"""Tests for the shard watchdog (repro.robust.watchdog).

Workers here are module-level functions (picklable under any
multiprocessing start method) that misbehave on purpose: crash, hang,
or crash only on a designated poison item — the scenarios the watchdog
exists to contain.
"""

import os
import time

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.robust.watchdog import (
    KIND_CRASH,
    KIND_TIMEOUT,
    QuarantinedCase,
    run_supervised,
)

POISON = 666


def _ok_worker(payload):
    return [item * 2 for item in payload]


def _crash_worker(payload):
    os._exit(3)


def _hang_worker(payload):
    time.sleep(60)


def _poison_worker(payload):
    if POISON in payload:
        os._exit(5)
    return [item * 2 for item in payload]


def _split(payload):
    return [(index, f"item-{item}", [item]) for index, item in enumerate(payload)]


def _fallback(payload):
    return ["fallback", payload]


class TestHappyPath:
    def test_all_payloads_complete(self):
        groups, quarantine = run_supervised(
            [[1, 2], [3], [4, 5, 6]], _ok_worker, attempts=1
        )
        assert groups == [[[2, 4]], [[6]], [[8, 10, 12]]]
        assert quarantine == []

    def test_empty_payload_list(self):
        groups, quarantine = run_supervised([], _ok_worker)
        assert groups == []
        assert quarantine == []

    def test_invalid_attempts_rejected(self):
        with pytest.raises(ValueError):
            run_supervised([[1]], _ok_worker, attempts=0)


class TestCrashContainment:
    def test_crash_without_quarantine_path_raises(self):
        with pytest.raises(RuntimeError, match="no quarantine path"):
            run_supervised([[1]], _crash_worker, attempts=1)

    def test_poison_case_is_quarantined(self):
        registry = MetricsRegistry()
        groups, quarantine = run_supervised(
            [[1, POISON, 3]],
            _poison_worker,
            attempts=2,
            split=_split,
            fallback=_fallback,
            registry=registry,
        )
        # The shard crashed twice, was split, and only the poison case
        # fell through to the fallback; innocent cases completed.
        assert groups == [[[2], ["fallback", [POISON]], [6]]]
        assert quarantine == [
            QuarantinedCase(
                rep_index=1, label=f"item-{POISON}", reason=KIND_CRASH, attempts=3
            )
        ]
        assert registry.get("robust.shard_crashes") == 3  # 2 shard + 1 case
        assert registry.get("robust.shard_retries") == 1
        assert registry.get("robust.quarantined") == 1

    def test_healthy_payloads_unaffected_by_sibling_poison(self):
        groups, quarantine = run_supervised(
            [[1, 2], [POISON]],
            _poison_worker,
            attempts=1,
            split=_split,
            fallback=_fallback,
        )
        assert groups[0] == [[2, 4]]
        assert groups[1] == [["fallback", [POISON]]]
        assert [case.rep_index for case in quarantine] == [0]


class TestTimeouts:
    def test_hung_worker_is_killed_and_quarantined(self):
        registry = MetricsRegistry()
        start = time.monotonic()
        groups, quarantine = run_supervised(
            [[1]],
            _hang_worker,
            timeout=0.3,
            attempts=1,
            split=_split,
            fallback=_fallback,
            registry=registry,
        )
        elapsed = time.monotonic() - start
        assert elapsed < 10  # never waits out the 60s sleep
        assert groups == [[["fallback", [1]]]]
        assert quarantine[0].reason == KIND_TIMEOUT
        assert registry.get("robust.shard_timeouts") == 2  # shard + case


class TestResume:
    def test_done_payloads_are_not_rerun(self):
        # Payloads marked done use a crashing worker: if the watchdog
        # ran them anyway, the call would raise RuntimeError.
        done = {0: (["cached-output"], [])}
        groups, quarantine = run_supervised(
            [[1], [2]],
            _poison_worker,
            attempts=1,
            done=done,
        )
        assert groups == [["cached-output"], [[4]]]
        assert quarantine == []

    def test_fully_done_runs_nothing(self):
        done = {0: (["a"], []), 1: (["b"], [QuarantinedCase(7, "x", "crash", 2)])}
        groups, quarantine = run_supervised(
            [[POISON], [POISON]], _crash_worker, attempts=1, done=done
        )
        assert groups == [["a"], ["b"]]
        assert quarantine == [QuarantinedCase(7, "x", "crash", 2)]

    def test_on_result_fires_per_completed_payload(self):
        seen = []
        run_supervised(
            [[1], [2], [3]],
            _ok_worker,
            attempts=1,
            done={1: (["cached"], [])},
            on_result=lambda index, outputs, quarantine: seen.append(index),
        )
        # Only freshly computed payloads are recorded (the checkpoint
        # already holds the done ones).
        assert sorted(seen) == [0, 2]


class TestQuarantinedCaseSerde:
    def test_round_trip(self):
        case = QuarantinedCase(3, "a[i] vs a[i+1]", KIND_TIMEOUT, 2)
        assert QuarantinedCase.from_dict(case.to_dict()) == case
