"""Tests for the program-level dependence graph."""

from repro.core.graph import build_graph
from repro.opt import compile_source

SOURCE = """
for i = 2 to 100 do
  a[i] = b[i - 1]
  b[i] = a[i - 1]
  c[i] = c[i]
end
"""


class TestBuildGraph:
    def test_edges_found(self):
        graph = build_graph(compile_source(SOURCE).program)
        assert len(graph) >= 3  # a<->b cycle + c self

    def test_statement_edges_indices(self):
        graph = build_graph(compile_source(SOURCE).program)
        pairs = {(src, dst) for src, dst, _ in graph.statement_edges()}
        assert (0, 1) in pairs  # a feeds b's read
        assert (1, 0) in pairs  # b feeds a's read

    def test_successors(self):
        graph = build_graph(compile_source(SOURCE).program)
        assert 1 in graph.successors(0)

    def test_kind_counts(self):
        graph = build_graph(compile_source(SOURCE).program)
        counts = graph.kind_counts()
        assert counts.get("flow", 0) >= 2

    def test_carried_by_level(self):
        graph = build_graph(compile_source(SOURCE).program)
        carried = graph.carried_by_level()
        assert 0 in carried  # the a/b recurrences carry at level 0

    def test_loop_independent_edges(self):
        graph = build_graph(compile_source(SOURCE).program)
        independent = graph.loop_independent_edges()
        # c[i] = c[i]: same-iteration self flow
        assert any(e.source.ref.array == "c" for e in independent)

    def test_no_input_edges(self):
        source = "for i = 1 to 9 do\n  x[i] = r[i] + r[i + 1]\nend"
        graph = build_graph(compile_source(source).program)
        assert all(e.kind != "input" for e in graph.edges)


class TestDotExport:
    def test_dot_structure(self):
        graph = build_graph(compile_source(SOURCE).program)
        dot = graph.to_dot()
        assert dot.startswith("digraph dependences {")
        assert dot.rstrip().endswith("}")
        assert "s0 -> s1" in dot
        assert "flow" in dot

    def test_dot_nodes_labelled(self):
        graph = build_graph(compile_source(SOURCE).program)
        dot = graph.to_dot()
        assert "S0: a[i]" in dot
        assert "shape=box" in dot

    def test_empty_program(self):
        from repro.ir import builder as B

        graph = build_graph(B.program("empty"))
        assert len(graph) == 0
        assert "digraph" in graph.to_dot()


GOLDEN_DOT = """digraph dependences {
  rankdir=TB;
  s0 [label="S0: a[i]" shape=box];
  s1 [label="S1: b[i]" shape=box];
  s2 [label="S2: c[i]" shape=box];
  s0 -> s1 [label="flow (<)" style=solid];
  s1 -> s0 [label="flow (<)" style=solid];
  s2 -> s2 [label="anti (=)" style=dashed];
}"""


class TestGoldenDot:
    """Pin the exact DOT text: node order, edge order, styling.

    The incremental engine's delta ≡ full contract compares ``to_dot``
    output byte-for-byte, so the rendering must stay deterministic —
    statements in program order, edges in ``reference_pairs`` order.
    Update the golden only for a deliberate format change.
    """

    def test_dot_is_byte_identical_to_golden(self):
        graph = build_graph(compile_source(SOURCE).program)
        assert graph.to_dot() == GOLDEN_DOT

    def test_dot_is_deterministic_across_builds(self):
        first = build_graph(compile_source(SOURCE).program)
        second = build_graph(compile_source(SOURCE).program)
        assert first.to_dot() == second.to_dot()
        assert first.edge_dicts() == second.edge_dicts()


class TestEdgeDicts:
    def test_edge_dicts_shape(self):
        graph = build_graph(compile_source(SOURCE).program)
        dicts = graph.edge_dicts()
        assert len(dicts) == len(graph.edges)
        for blob, edge in zip(dicts, graph.edges):
            assert blob["kind"] == edge.kind
            assert blob["vector"] == list(edge.vector)
            assert blob["source"]["stmt"] == edge.source.stmt_index
            assert blob["sink"]["site"] == edge.sink.site_index
            assert blob["loop_carried"] == edge.loop_carried

    def test_edge_dicts_are_json_serializable(self):
        import json

        graph = build_graph(compile_source(SOURCE).program)
        assert json.loads(json.dumps(graph.edge_dicts())) == (
            graph.edge_dicts()
        )
