"""Tests for the program-level dependence graph."""

from repro.core.graph import build_graph
from repro.opt import compile_source

SOURCE = """
for i = 2 to 100 do
  a[i] = b[i - 1]
  b[i] = a[i - 1]
  c[i] = c[i]
end
"""


class TestBuildGraph:
    def test_edges_found(self):
        graph = build_graph(compile_source(SOURCE).program)
        assert len(graph) >= 3  # a<->b cycle + c self

    def test_statement_edges_indices(self):
        graph = build_graph(compile_source(SOURCE).program)
        pairs = {(src, dst) for src, dst, _ in graph.statement_edges()}
        assert (0, 1) in pairs  # a feeds b's read
        assert (1, 0) in pairs  # b feeds a's read

    def test_successors(self):
        graph = build_graph(compile_source(SOURCE).program)
        assert 1 in graph.successors(0)

    def test_kind_counts(self):
        graph = build_graph(compile_source(SOURCE).program)
        counts = graph.kind_counts()
        assert counts.get("flow", 0) >= 2

    def test_carried_by_level(self):
        graph = build_graph(compile_source(SOURCE).program)
        carried = graph.carried_by_level()
        assert 0 in carried  # the a/b recurrences carry at level 0

    def test_loop_independent_edges(self):
        graph = build_graph(compile_source(SOURCE).program)
        independent = graph.loop_independent_edges()
        # c[i] = c[i]: same-iteration self flow
        assert any(e.source.ref.array == "c" for e in independent)

    def test_no_input_edges(self):
        source = "for i = 1 to 9 do\n  x[i] = r[i] + r[i + 1]\nend"
        graph = build_graph(compile_source(source).program)
        assert all(e.kind != "input" for e in graph.edges)


class TestDotExport:
    def test_dot_structure(self):
        graph = build_graph(compile_source(SOURCE).program)
        dot = graph.to_dot()
        assert dot.startswith("digraph dependences {")
        assert dot.rstrip().endswith("}")
        assert "s0 -> s1" in dot
        assert "flow" in dot

    def test_dot_nodes_labelled(self):
        graph = build_graph(compile_source(SOURCE).program)
        dot = graph.to_dot()
        assert "S0: a[i]" in dot
        assert "shape=box" in dot

    def test_empty_program(self):
        from repro.ir import builder as B

        graph = build_graph(B.program("empty"))
        assert len(graph) == 0
        assert "digraph" in graph.to_dot()
