"""Accounting invariants of the analyzer's statistics.

The paper's tables are all views over these counters, so their internal
consistency is what makes the regenerated tables trustworthy: every
query must be accounted for exactly once (constant, GCD-independent,
memo hit, or one decided test), and memo totals must tie out.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analyzer import DependenceAnalyzer
from repro.core.memo import Memoizer
from repro.core.stats import TEST_ORDER
from repro.perfect import BUCKETS, make_query

bucket = st.sampled_from([b for b in BUCKETS])
idx = st.integers(0, 25)
wrapper = st.integers(0, 2)


@st.composite
def query_streams(draw):
    n = draw(st.integers(5, 40))
    out = []
    for _ in range(n):
        out.append(
            make_query(draw(bucket), draw(idx), draw(wrapper), False)
        )
    # force repeats
    repeats = draw(st.integers(0, n))
    out.extend(out[:repeats])
    return out


class TestAccounting:
    @given(query_streams())
    @settings(max_examples=60, deadline=None)
    def test_every_query_accounted_once_no_memo(self, queries):
        analyzer = DependenceAnalyzer(want_witness=False)
        for q in queries:
            analyzer.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
        stats = analyzer.stats
        decided = sum(stats.decided_by.get(t, 0) for t in TEST_ORDER)
        assert (
            stats.total_queries
            == stats.constant_cases + stats.gcd_independent + decided
        )

    @given(query_streams())
    @settings(max_examples=60, deadline=None)
    def test_every_query_accounted_once_with_memo(self, queries):
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo, want_witness=False)
        gcd_memo_hits = 0
        for q in queries:
            result = analyzer.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
            if result.from_memo and result.decided_by == "gcd":
                gcd_memo_hits += 1
        stats = analyzer.stats
        decided = sum(stats.decided_by.get(t, 0) for t in TEST_ORDER)
        assert stats.total_queries == (
            stats.constant_cases
            + stats.gcd_independent
            + gcd_memo_hits
            + stats.memo_hits_bounds
            + decided
        )

    @given(query_streams())
    @settings(max_examples=60, deadline=None)
    def test_memo_table_totals_tie_out(self, queries):
        memo = Memoizer()
        analyzer = DependenceAnalyzer(memoizer=memo, want_witness=False)
        for q in queries:
            analyzer.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
        stats = analyzer.stats
        assert memo.no_bounds.stats.queries == stats.memo_queries_no_bounds
        assert memo.no_bounds.stats.hits == stats.memo_hits_no_bounds
        assert memo.with_bounds.stats.queries == stats.memo_queries_bounds
        assert memo.with_bounds.stats.hits == stats.memo_hits_bounds
        # unique = queries - hits, per table
        assert (
            memo.no_bounds.stats.unique
            == memo.no_bounds.stats.queries - memo.no_bounds.stats.hits
        )
        assert (
            memo.with_bounds.stats.unique
            == memo.with_bounds.stats.queries - memo.with_bounds.stats.hits
        )

    @given(query_streams())
    @settings(max_examples=40, deadline=None)
    def test_memo_never_changes_verdicts(self, queries):
        plain = DependenceAnalyzer(want_witness=False)
        memoized = DependenceAnalyzer(
            memoizer=Memoizer(), want_witness=False
        )
        for q in queries:
            a = plain.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
            b = memoized.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
            assert a.dependent == b.dependent
            assert a.distance == b.distance

    @given(query_streams())
    @settings(max_examples=30, deadline=None)
    def test_outcome_counts_match_decisions(self, queries):
        analyzer = DependenceAnalyzer(want_witness=False)
        for q in queries:
            analyzer.analyze(q.ref1, q.nest1, q.ref2, q.nest2)
        stats = analyzer.stats
        for test in TEST_ORDER:
            indep = stats.outcomes.get((test, "independent"), 0)
            dep = stats.outcomes.get((test, "dependent"), 0)
            assert indep + dep == stats.decided_by.get(test, 0)
