"""Tests for the unimodular/echelon factorization U @ A == D."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.echelon import echelon_factor
from repro.linalg.matrix import IntMatrix

small = st.integers(min_value=-15, max_value=15)


def matrices(max_rows: int = 5, max_cols: int = 4):
    return st.integers(1, max_rows).flatmap(
        lambda rows: st.integers(1, max_cols).flatmap(
            lambda cols: st.lists(
                st.lists(small, min_size=cols, max_size=cols),
                min_size=rows,
                max_size=rows,
            ).map(IntMatrix)
        )
    )


class TestFactorizationInvariants:
    @given(matrices())
    @settings(max_examples=200)
    def test_u_times_a_equals_d(self, a):
        fact = echelon_factor(a)
        assert fact.u @ a == fact.d

    @given(matrices())
    @settings(max_examples=200)
    def test_u_is_unimodular(self, a):
        fact = echelon_factor(a)
        assert fact.u.is_unimodular()

    @given(matrices())
    @settings(max_examples=200)
    def test_d_is_echelon(self, a):
        fact = echelon_factor(a)
        assert fact.d.is_echelon()

    @given(matrices())
    def test_pivots_positive(self, a):
        fact = echelon_factor(a)
        for row, col in enumerate(fact.pivot_cols):
            assert fact.d[row, col] > 0
            # pivot is the first nonzero of its row
            assert all(fact.d[row, j] == 0 for j in range(col))

    @given(matrices())
    def test_rank_consistent(self, a):
        fact = echelon_factor(a)
        assert fact.rank == len(fact.pivot_cols)
        nonzero_rows = sum(
            1 for row in fact.d.rows if any(x != 0 for x in row)
        )
        assert fact.rank == nonzero_rows


class TestKnownFactorizations:
    def test_paper_single_equation(self):
        # The paper's example: i + 10 = i' with (i, i') gives the single
        # equation i - i' = -10; the matrix A is the column (1, -1).
        a = IntMatrix([[1], [-1]])
        fact = echelon_factor(a)
        assert fact.rank == 1
        assert fact.d[0, 0] == 1
        # One free variable: solutions (i, i') = (t, t + 10) after the
        # back substitution (checked in the transform tests).

    def test_identity_input(self):
        a = IntMatrix.identity(3)
        fact = echelon_factor(a)
        assert fact.rank == 3
        assert fact.d == IntMatrix.identity(3)

    def test_zero_matrix(self):
        a = IntMatrix.zeros(3, 2)
        fact = echelon_factor(a)
        assert fact.rank == 0
        assert fact.u == IntMatrix.identity(3)

    def test_gcd_in_pivot(self):
        # gcd(4, 6) = 2 must surface as the pivot.
        a = IntMatrix([[4], [6]])
        fact = echelon_factor(a)
        assert fact.d[0, 0] == 2

    def test_coupled_system(self):
        # Two equations over four variables (coupled subscripts).
        a = IntMatrix([[1, 0], [0, 1], [0, -1], [-1, 0]])
        fact = echelon_factor(a)
        assert fact.u @ a == fact.d
        assert fact.rank == 2
